"""Static analysis pipeline: verifier rules, lint rules, estimators.

Two kinds of guarantees under test:

* **Soundness** — every verifier/lint rule fires on a purposely
  corrupted trace or config (seeded-corruption tests): shifting an
  event address out of its buffer, inflating a granted vector length,
  overlapping two allocations, etc. must each produce exactly the
  expected finding.
* **Zero false positives** — every zoo preset and kernel policy the
  repo ships analyzes with *no* findings, and the static roofline
  bound is ≤ the simulated cycles on every machine preset (the
  consistency oracle).
"""

import numpy as np
import pytest

from repro.analysis import (
    analyze_trace,
    check_bounds_against_sim,
    lint_config,
    predict_l2_knee,
    static_bounds,
    verify_trace,
    working_sets,
)
from repro.analysis.findings import AnalysisReport, Finding
from repro.cli import main
from repro.core import sweep_cache_sizes, tracecache
from repro.machine import a64fx, rvv_gem5, sve_gem5
from repro.machine.config import KB, MB, CacheParams
from repro.machine.replay import replay
from repro.machine.trace import (
    OP_SW_PREFETCH,
    OP_VARITH,
    OP_VLOAD,
    OP_VSTORE,
    RecordedTrace,
    TraceRecorder,
)
from repro.nets import ConvLayer, KernelPolicy, MaxPoolLayer, Network
from repro.nets.zoo import yolov3_tiny

pytestmark = pytest.mark.filterwarnings("error")


def small_net():
    return Network(
        [ConvLayer(8, 3, 1), MaxPoolLayer(2, 2), ConvLayer(16, 3, 1)],
        input_shape=(4, 32, 32),
        name="small",
    )


@pytest.fixture(scope="module")
def machine():
    return rvv_gem5(vlen_bits=512, l2_mb=1)


@pytest.fixture(scope="module")
def trace(machine):
    return small_net().record_trace(machine, KernelPolicy())


def mutate(trace, edit=None, buffers=None, vlen_bits=None):
    """Copy *trace* with its columns (and optionally header) corrupted.

    *edit* receives a dict of mutable column copies keyed by name.
    """
    cols = {
        name: np.array(getattr(trace, name), copy=True)
        for name in ("op", "w", "kid", "i0", "i1", "i2", "i3", "f0")
    }
    if edit is not None:
        edit(cols)
    return RecordedTrace(
        trace.key,
        trace.isa_name,
        vlen_bits if vlen_bits is not None else trace.vlen_bits,
        trace.l1_line_bytes,
        trace.labels,
        cols["op"], cols["w"], cols["kid"], cols["i0"],
        cols["i1"], cols["i2"], cols["i3"], cols["f0"],
        buffers=buffers if buffers is not None else trace.buffers,
    )


def rules_of(findings):
    return {f.rule for f in findings}


# ----------------------------------------------------------------------
# Soundness: every corruption trips its rule
# ----------------------------------------------------------------------

def test_clean_trace_has_no_findings(trace, machine):
    assert verify_trace(trace, machine) == []


def test_oob_unallocated_fires(trace, machine):
    ev = int(np.flatnonzero(trace.op == OP_VLOAD)[0])
    beyond = max(b + s for _, b, s in trace.buffers) + 1 << 20

    def shift(cols):
        cols["i0"][ev] = beyond

    bad = verify_trace(mutate(trace, shift), machine)
    assert "trace/oob-unallocated" in rules_of(bad)
    f = [x for x in bad if x.rule == "trace/oob-unallocated"][0]
    assert f.count == 1 and f.severity == "error"
    assert f.detail["examples"][0]["event"] == ev


def test_oob_overrun_fires(trace, machine):
    ev = int(np.flatnonzero(trace.op == OP_VLOAD)[0])
    name, base, nbytes = max(trace.buffers, key=lambda b: b[2])

    def overrun(cols):
        # Start 4 bytes before the end, read 8 unit-stride f32 lanes.
        cols["i0"][ev] = base + nbytes - 4
        cols["i1"][ev] = 8
        cols["i2"][ev] = 4
        cols["i3"][ev] = 0

    bad = verify_trace(mutate(trace, overrun), machine)
    assert "trace/oob-overrun" in rules_of(bad)


def test_buffer_overlap_fires(trace, machine):
    (n0, b0, s0) = trace.buffers[0]
    overlapped = ((n0, b0, s0), ("evil", b0 + 16, max(s0, 32))) + trace.buffers[1:]
    bad = verify_trace(mutate(trace, buffers=overlapped), machine)
    assert "trace/buffer-overlap" in rules_of(bad)


def test_vl_exceeds_grant_fires_on_varith(trace, machine):
    ev = int(np.flatnonzero(trace.op == OP_VARITH)[0])

    def inflate(cols):
        cols["i0"][ev] = machine.vlen_f32 + 1  # one lane beyond the grant
        cols["i2"][ev] = 4

    bad = verify_trace(mutate(trace, inflate), machine)
    assert "trace/vl-exceeds-grant" in rules_of(bad)


def test_vl_exceeds_grant_fires_on_vmem(trace, machine):
    ev = int(np.flatnonzero(trace.op == OP_VLOAD)[0])
    group_elems = 8 * (machine.vlen_bits // 32)  # LMUL-8 ceiling in f32

    def inflate(cols):
        cols["i1"][ev] = group_elems + 1
        cols["i2"][ev] = 4

    bad = verify_trace(mutate(trace, inflate), machine)
    assert "trace/vl-exceeds-grant" in rules_of(bad)


def test_multi_register_vmem_within_group_is_legal(trace, machine):
    # The Winograd tuple-multiply moves 64-element f32 tiles in one
    # event: wider than one register at vlen 512, but within LMUL-8.
    ev = int(np.flatnonzero(trace.op == OP_VLOAD)[0])
    name, base, nbytes = max(trace.buffers, key=lambda b: b[2])

    def widen(cols):
        cols["i0"][ev] = base
        cols["i1"][ev] = 64
        cols["i2"][ev] = 4
        cols["i3"][ev] = 0

    assert verify_trace(mutate(trace, widen), machine) == []


def test_bad_stride_fires(trace, machine):
    ev = int(np.flatnonzero(trace.op == OP_VLOAD)[0])

    def squeeze(cols):
        cols["i3"][ev] = 2  # below the 4-byte element width: lanes overlap

    bad = verify_trace(mutate(trace, squeeze), machine)
    assert "trace/bad-stride" in rules_of(bad)


def test_bad_weight_fires(trace, machine):
    def negate(cols):
        cols["w"][0] = -1.0

    bad = verify_trace(mutate(trace, negate), machine)
    assert "trace/bad-weight" in rules_of(bad)

    def nan(cols):
        cols["w"][0] = float("nan")

    assert "trace/bad-weight" in rules_of(verify_trace(mutate(trace, nan), machine))


def test_bad_opcode_fires(trace, machine):
    def garble(cols):
        cols["op"][0] = 99

    bad = verify_trace(mutate(trace, garble), machine)
    assert "trace/bad-opcode" in rules_of(bad)

    def bad_kid(cols):
        cols["kid"][0] = len(trace.labels) + 7

    assert "trace/bad-opcode" in rules_of(
        verify_trace(mutate(trace, bad_kid), machine)
    )


def test_bad_elem_width_fires(trace, machine):
    ev = int(np.flatnonzero(trace.op == OP_VLOAD)[0])

    def warp(cols):
        cols["i2"][ev] = 3

    bad = verify_trace(mutate(trace, warp), machine)
    assert "trace/bad-elem-width" in rules_of(bad)


def test_prefetch_level_fires(machine):
    rec = TraceRecorder(machine)
    buf = rec.alloc("x", 4 * KB)
    with rec.kernel("k"):
        rec.sw_prefetch(buf.base, 64, "L1")
    t = rec.finish()
    assert verify_trace(t, machine) == []
    ev = int(np.flatnonzero(t.op == OP_SW_PREFETCH)[0])

    def warp(cols):
        cols["i2"][ev] = 5

    assert "trace/prefetch-level" in rules_of(verify_trace(mutate(t, warp), machine))


def test_trace_vlen_illegal_fires(trace, machine):
    bad = verify_trace(mutate(trace, vlen_bits=100), machine=None)
    assert "trace/vlen-illegal" in rules_of(bad)


def test_machine_mismatch_fires(trace):
    other = rvv_gem5(vlen_bits=1024, l2_mb=1)
    assert "trace/machine-mismatch" in rules_of(verify_trace(trace, other))


def test_findings_aggregate_per_kernel(trace, machine):
    # Corrupt many events of one kernel: one finding, count = many.
    evs = np.flatnonzero(trace.op == OP_VLOAD)[:10]
    kid0 = int(trace.kid[evs[0]])
    same = evs[np.asarray(trace.kid)[evs] == kid0]
    beyond = max(b + s for _, b, s in trace.buffers) + 1 << 20

    def shift(cols):
        cols["i0"][same] = beyond

    found = [
        f for f in verify_trace(mutate(trace, shift), machine)
        if f.rule == "trace/oob-unallocated"
    ]
    assert len(found) == 1
    assert found[0].count == len(same)
    assert len(found[0].detail["examples"]) <= 3


# ----------------------------------------------------------------------
# Config linter
# ----------------------------------------------------------------------

def test_lint_clean_presets():
    pol = KernelPolicy()
    for m in (rvv_gem5(), sve_gem5(), a64fx()):
        assert lint_config(m, pol) == []
    assert lint_config(rvv_gem5(vlen_bits=16384), KernelPolicy(gemm="6loop")) == []


def test_lint_vlen_illegal():
    m = rvv_gem5(vlen_bits=384)  # not a power of two
    assert "config/vlen-illegal" in rules_of(lint_config(m))


def test_lint_line_not_pow2():
    m = rvv_gem5().with_(l1=CacheParams(48 * KB, 4, 96, 4))
    assert "config/line-not-pow2" in rules_of(lint_config(m))


def test_lint_line_inclusion():
    m = a64fx().with_(l2=CacheParams(8 * MB, 16, 64, 37))  # L1 line is 256
    assert "config/line-inclusion" in rules_of(lint_config(m))


def test_lint_l2_smaller_than_l1():
    m = rvv_gem5().with_(l2=CacheParams(32 * KB, 8, 64, 10))
    assert "config/l2-smaller-than-l1" in rules_of(lint_config(m))


def test_lint_pack_block_vl():
    from repro.kernels.gemm_6loop import BlockSizes

    m = rvv_gem5(vlen_bits=16384)  # vl = 512 f32
    pol = KernelPolicy(gemm="6loop", blocks=BlockSizes(m=16, n=256, k=128))
    assert "config/pack-block-vl" in rules_of(lint_config(m, pol))


def test_lint_pack_block_unroll():
    from repro.kernels.gemm_6loop import BlockSizes

    pol = KernelPolicy(gemm="6loop", blocks=BlockSizes(m=24, n=512, k=128))
    assert "config/pack-block-unroll" in rules_of(lint_config(rvv_gem5(), pol))


def test_lint_winograd_vl():
    m = rvv_gem5(vlen_bits=128)  # 8x8 f32 tile exceeds LMUL-8 here
    pol = KernelPolicy(winograd="stride1")
    assert "config/winograd-vl" in rules_of(lint_config(m, pol))


def test_lint_unroll_spill_warns():
    pol = KernelPolicy(unroll=32)
    found = [f for f in lint_config(rvv_gem5(), pol)
             if f.rule == "config/unroll-spill"]
    assert len(found) == 1 and found[0].severity == "warning"


# ----------------------------------------------------------------------
# Zero findings on everything the repo ships
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "machine_fn",
    [lambda: rvv_gem5(l2_mb=4), lambda: sve_gem5(l2_mb=4), a64fx],
    ids=["rvv", "sve", "a64fx"],
)
def test_zoo_preset_analyzes_clean(machine_fn):
    rep = yolov3_tiny().analyze(machine_fn(), n_layers=6)
    assert rep.ok, [f.as_dict() for f in rep.findings]
    assert rep.working_set and rep.bounds


@pytest.mark.parametrize(
    "policy",
    [KernelPolicy(gemm="naive"), KernelPolicy(gemm="6loop"),
     KernelPolicy(winograd="stride1")],
    ids=["naive", "6loop", "winograd"],
)
def test_policies_analyze_clean(policy):
    rep = yolov3_tiny().analyze(rvv_gem5(l2_mb=4), policy, n_layers=6)
    assert rep.ok, [f.as_dict() for f in rep.findings]


# ----------------------------------------------------------------------
# Static roofline bound vs simulated cycles (oracle)
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "machine_fn",
    [lambda: rvv_gem5(l2_mb=2), lambda: sve_gem5(l2_mb=2), a64fx],
    ids=["rvv", "sve", "a64fx"],
)
def test_bound_is_lower_bound(machine_fn):
    m = machine_fn()
    t = small_net().record_trace(m, KernelPolicy())
    rows = static_bounds(t, m)
    stats = replay(t, m)
    assert check_bounds_against_sim(rows, stats) == []
    total = [r for r in rows if r["kernel"] == "* total"][0]
    assert 0 < total["bound_mcycles"] * 1e6 <= stats.cycles
    for r in rows:
        if r["kernel"] in stats.kernel_cycles:
            assert r["bound_mcycles"] * 1e6 <= stats.kernel_cycles[r["kernel"]] * (
                1 + 1e-9
            )


def test_bound_holds_under_6loop_oracle():
    rep = yolov3_tiny().analyze(
        rvv_gem5(l2_mb=4), KernelPolicy(gemm="6loop"), n_layers=6, oracle=True
    )
    assert rep.ok and rep.oracle is not None
    assert 0 < rep.oracle["bound_tightness"] <= 1.0


def test_oracle_detects_model_drift(trace, machine):
    from repro.machine.simulator import SimStats

    rows = static_bounds(trace, machine)
    fake = SimStats()
    fake.cycles = 1.0  # impossibly fast "simulation"
    fake.kernel_cycles = {r["kernel"]: 1.0 for r in rows}
    bad = check_bounds_against_sim(rows, fake)
    assert "oracle/bound-exceeds-sim" in rules_of(bad)


# ----------------------------------------------------------------------
# Working sets & the L2 knee
# ----------------------------------------------------------------------

def test_footprint_exact_on_handmade_trace(machine):
    line = machine.l2.line_bytes
    rec = TraceRecorder(machine)
    buf = rec.alloc("x", 64 * KB)
    with rec.kernel("k"):
        rec.vload(buf.base, 16, 4)           # one line (64 B)
        rec.vload(buf.base + 16, 4, 4)       # same line: no new footprint
        rec.vload(buf.base + 10 * line, 16, 4)  # one distinct line
        rec.scalar_load(buf.base + 20 * line, 4)  # another distinct line
    t = rec.finish()
    rows = working_sets(t, machine)
    assert len(rows) == 1 and rows[0]["kernel"] == "k"
    assert rows[0]["resident_kb"] == 3 * line / 1024
    assert rows[0]["cold_miss_floor"] == 3


def test_strided_access_footprint(machine):
    line = machine.l2.line_bytes
    rec = TraceRecorder(machine)
    buf = rec.alloc("x", 1 << 20)
    with rec.kernel("k"):
        # 8 elements, one per line: footprint is 8 lines even though
        # only 32 bytes move.
        rec.vload(buf.base, 8, 4, stride=line)
    t = rec.finish()
    rows = working_sets(t, machine)
    assert rows[0]["cold_miss_floor"] == 8


def test_knee_prediction_matches_l2_sweep():
    """The statically predicted knee brackets the real miss-curve cliff.

    yolov3-tiny's first 13 layers include the 512->1024 3x3 conv whose
    re-streamed ranges dominate; the analyzer predicts the L2 capacity
    where they fit.  A real L2 sweep must show the miss rate collapsing
    once capacity crosses the prediction and flat above it (Fig. 5).
    """
    net = yolov3_tiny()
    m = rvv_gem5(vlen_bits=512, l2_mb=1)
    t, _ = tracecache.get_or_capture(net, m, KernelPolicy(), 13)
    knee = predict_l2_knee(t, m)
    assert 4 * MB < knee <= 32 * MB

    res = sweep_cache_sizes(
        net, [4, 32, 64],
        lambda mb: rvv_gem5(vlen_bits=512, l2_mb=mb),
        n_layers=13, use_trace=True,
    )
    below, above, far = res.miss_rates()
    assert above < 0.5 * below          # crossing the knee collapses misses
    assert abs(above - far) < 1e-9      # and the curve is flat beyond it


def test_knee_is_zero_without_ranges(machine):
    rec = TraceRecorder(machine)
    buf = rec.alloc("x", 4 * KB)
    with rec.kernel("k"):
        rec.vload(buf.base, 16, 4)
    assert predict_l2_knee(rec.finish(), machine) == 0


# ----------------------------------------------------------------------
# Report plumbing, CLI, replay/tracecache integration
# ----------------------------------------------------------------------

def test_report_render_and_json(trace, machine):
    rep = analyze_trace(trace, machine, policy=KernelPolicy(), net_name="small")
    text = rep.to_text()
    assert "findings: none" in text and "working sets" in text
    import json

    doc = json.loads(rep.to_json())
    assert doc["ok"] is True and doc["net"] == "small"


def test_report_ok_false_with_findings():
    rep = AnalysisReport(net="n", machine="m", policy="p")
    assert rep.ok
    rep.findings.append(
        Finding(rule="trace/bad-weight", severity="error", where="k", message="x")
    )
    assert not rep.ok and rep.n_errors == 1
    assert rep.findings_for("trace/bad-weight")


def test_finding_rejects_unknown_severity():
    with pytest.raises(ValueError):
        Finding(rule="r", severity="fatal", where="w", message="m")


def test_cli_analyze_ok(capsys):
    rc = main(["analyze", "--net", "yolov3-tiny", "--layers", "4", "--l2-mb", "4"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "findings: none" in out


def test_cli_analyze_fails_on_findings(capsys):
    # vlen 384 is not constructible on RVV: lint and verifier both flag it.
    rc = main(["analyze", "--net", "yolov3-tiny", "--layers", "2", "--vlen", "384"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "config/vlen-illegal" in out


def test_cli_analyze_json(capsys):
    import json

    rc = main(["analyze", "--net", "yolov3-tiny", "--layers", "4",
               "--l2-mb", "4", "--json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 0 and doc["ok"] is True


def test_replay_verify_flag_rejects_corrupt_trace(trace, machine):
    def negate(cols):
        cols["w"][0] = -1.0

    bad = mutate(trace, negate)
    with pytest.raises(ValueError, match="failed verification"):
        replay(bad, machine, verify=True)
    # Clean traces replay unchanged through the same flag.
    assert replay(trace, machine, verify=True).cycles > 0


def test_tracecache_verify_discards_corrupt_spill(tmp_path, monkeypatch, trace, machine):
    monkeypatch.setenv("REPRO_TRACE_SPILL", "1")
    monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
    # Rejected spills are *quarantined* under the simcache dir; keep that
    # out of the developer's real .simcache/.
    monkeypatch.setenv("REPRO_SIMCACHE_DIR", str(tmp_path / ".simcache"))
    monkeypatch.setenv("REPRO_TRACE_VERIFY", "1")
    tracecache.clear_registry()

    def negate(cols):
        cols["w"][0] = -1.0

    bad = mutate(trace, negate)
    tracecache.save_compressed(bad, str(tmp_path / "deadbeef.rtz"))
    assert tracecache.get("deadbeef") is None  # verified, rejected

    tracecache.save_compressed(trace, str(tmp_path / "goodf00d.rtz"))
    loaded = tracecache.get("goodf00d")
    assert loaded is not None and loaded.n_events == trace.n_events
    tracecache.clear_registry()


# ----------------------------------------------------------------------
# SVE-preset and stride-2 Winograd coverage (verifier + new passes)
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def sve_machine():
    return sve_gem5(vlen_bits=512, l2_mb=1)


@pytest.fixture(scope="module")
def sve_trace(sve_machine):
    return small_net().record_trace(sve_machine, KernelPolicy())


def test_sve_clean_trace_has_no_findings(sve_trace, sve_machine):
    assert verify_trace(sve_trace, sve_machine) == []


def test_sve_oob_unallocated_fires(sve_trace, sve_machine):
    top = max(b + s for _, b, s in sve_trace.buffers)

    def shift(cols):
        i = np.flatnonzero(cols["op"] == OP_VLOAD)[0]
        cols["i0"][i] = top + 4096

    found = verify_trace(mutate(sve_trace, shift), sve_machine)
    assert "trace/oob-unallocated" in rules_of(found)


def test_sve_vl_exceeds_grant_fires(sve_trace, sve_machine):
    def inflate(cols):
        i = np.flatnonzero(cols["op"] == OP_VLOAD)[0]
        cols["i1"][i] = 10 ** 6

    found = verify_trace(mutate(sve_trace, inflate), sve_machine)
    assert "trace/vl-exceeds-grant" in rules_of(found)


@pytest.fixture(scope="module", params=["rvv", "sve"])
def s2_setup(request):
    """Stride-2 decomposed Winograd trace (the Section VII-A kernel)."""
    from repro.kernels import ConvSpec
    from repro.kernels.winograd import trace_stride2_decomposed

    m = (rvv_gem5(l2_mb=4) if request.param == "rvv"
         else sve_gem5(l2_mb=4))
    rec = TraceRecorder(m)
    trace_stride2_decomposed(rec, ConvSpec(16, 32, 32, 16, 3, 2, 1))
    return m, rec.finish()


def test_stride2_winograd_analyzes_clean(s2_setup):
    m, t = s2_setup
    rep = analyze_trace(t, m, net_name="s2")
    assert rep.ok, [f.as_dict() for f in rep.findings]
    assert any(r["kernel"].startswith(("wino", "s2")) for r in rep.reuse)
    assert {"s2_phase_extract", "wino_tuple_mult", "s2_accumulate"} <= set(
        t.labels
    )


def test_stride2_winograd_verifier_corruption_fires(s2_setup):
    m, t = s2_setup
    top = max(b + s for _, b, s in t.buffers)

    def shift(cols):
        i = np.flatnonzero(cols["op"] == OP_VLOAD)[0]
        cols["i0"][i] = top + 4096

    assert "trace/oob-unallocated" in rules_of(verify_trace(mutate(t, shift), m))


def test_stride2_winograd_dataflow_corruption_fires(s2_setup):
    """Delaying the base-covering tuple-mult M-writes past their reader.

    Same surgery as the im2col test in test_temporal.py, applied to the
    stride-2 Winograd pipeline: ``wino_output_transform`` then consumes
    ``s2_M`` bytes that are only produced afterwards.  (The output
    transform's reads fold onto the panel base, so the *first* half of
    the ascending write stream is the one that feeds it.)
    """
    from repro.analysis import defuse_trace

    m, t = s2_setup
    kid_mult = t.labels.index("wino_tuple_mult")
    kid = np.asarray(t.kid)
    base = next(b for n, b, _s in t.buffers if n == "s2_M")
    # Every tuple-mult pass rewrites s2_M from its base, so split by
    # address, not time: delay all writes into the consumed window.
    move = (
        (kid == kid_mult)
        & (np.asarray(t.op) == OP_VSTORE)
        & (np.asarray(t.i0) >= base)
        & (np.asarray(t.i0) < base + 1024)
    )
    order = np.argsort(move, kind="stable")

    def permute(cols):
        for name in cols:
            cols[name][:] = cols[name][order]

    found = defuse_trace(mutate(t, permute), m)
    assert "dataflow/read-before-write" in rules_of(found)
    assert any("s2_M" in f.where for f in found)
