"""Tests for the trace simulator: event pricing, sampling, attribution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import (
    SimStats,
    TraceSimulator,
    a64fx,
    rvv_gem5,
    sve_gem5,
    varith_cycles,
    vmem_transfer_cycles,
)


@pytest.fixture
def sim():
    return TraceSimulator(rvv_gem5(vlen_bits=512, lanes=8, l2_mb=1))


class TestAllocation:
    def test_buffers_dont_overlap(self, sim):
        a = sim.alloc("A", 1000)
        b = sim.alloc("B", 1000)
        assert a.end <= b.base

    def test_duplicate_names_uniquified(self, sim):
        a1 = sim.alloc("A", 10)
        a2 = sim.alloc("A", 10)
        assert a1.name != a2.name

    def test_elem_addressing(self, sim):
        a = sim.alloc("A", 64)
        assert a.elem(3) == a.base + 12
        with pytest.raises(ValueError):
            a.elem(1000)


class TestEventPricing:
    def test_scalar_cycles(self, sim):
        sim.scalar(10)
        assert sim.stats.cycles == 10 * sim.machine.core.scalar_cpi
        assert sim.stats.scalar_instrs == 10

    def test_varith_counts_flops(self, sim):
        sim.varith(16, n_instr=4)  # 4 FMAs x 16 lanes x 2 flops
        assert sim.stats.flops == 128
        assert sim.stats.vec_instrs == 4
        assert sim.stats.vec_elems == 64

    def test_varith_cycles_formula(self):
        cfg = rvv_gem5(lanes=8)
        # 8 lanes -> 16 f32/cycle; 512 elems -> 32 exec cycles, which
        # dominate the 3-cycle dispatch; plus lane fill 2.
        assert varith_cycles(cfg.vpu, 512) == 34
        # Short vectors are dispatch-bound on the decoupled VPU:
        # max(exec=1, dispatch=3) + fill 2.
        assert varith_cycles(cfg.vpu, 16) == 5
        # A group of independent ops pays the lane fill once.
        assert varith_cycles(cfg.vpu, 512, n_instr=4) == 2 + 4 * 32

    def test_lane_scaling(self):
        c2 = varith_cycles(rvv_gem5(lanes=2).vpu, 256)
        c8 = varith_cycles(rvv_gem5(lanes=8).vpu, 256)
        assert c2 > c8

    def test_vmem_transfer(self):
        cfg = rvv_gem5()
        assert vmem_transfer_cycles(cfg.vpu, 2048) == 32  # 64 B/cycle port

    def test_vload_accounts_memory(self, sim):
        a = sim.alloc("A", 4096)
        sim.vload(a.base, 16)
        assert sim.stats.bytes_loaded == 64
        assert sim.stats.vec_mem_instrs == 1
        assert sim.stats.l2_misses == 1  # cold

    def test_vload_miss_costs_more_than_hit(self):
        s = TraceSimulator(rvv_gem5())
        a = s.alloc("A", 4096)
        s.vload(a.base, 16)
        cold = s.stats.cycles
        s.vload(a.base, 16)
        warm = s.stats.cycles - cold
        assert warm < cold

    def test_store_stall_discounted(self):
        s1 = TraceSimulator(sve_gem5())
        s2 = TraceSimulator(sve_gem5())
        a1 = s1.alloc("A", 4096)
        a2 = s2.alloc("A", 4096)
        s1.vload(a1.base, 16)
        s2.vstore(a2.base, 16)
        assert s2.stats.cycles < s1.stats.cycles

    def test_strided_load_touches_line_per_elem(self, sim):
        a = sim.alloc("A", 1 << 16)
        sim.vload(a.base, 8, stride=256)
        assert sim.stats.l2_misses == 8

    def test_gather_spread(self, sim):
        a = sim.alloc("A", 1 << 16)
        sim.vgather(a.base, 8, span_bytes=8 * 256)
        assert sim.stats.l2_misses == 8

    def test_zero_elem_ops_free(self, sim):
        sim.vload(0, 0)
        sim.varith(0, 5)
        assert sim.stats.cycles == 0

    def test_spill_traffic(self, sim):
        sim.spill(2)
        assert sim.stats.spills == 2
        assert sim.stats.bytes_stored == 2 * 64
        assert sim.stats.bytes_loaded == 2 * 64


class TestSwPrefetch:
    def test_rvv_drops_prefetch_free(self):
        s = TraceSimulator(rvv_gem5())
        a = s.alloc("A", 4096)
        s.sw_prefetch(a.base, 256)
        assert s.stats.cycles == 0  # compiler deleted the intrinsic

    def test_gem5_sve_noop_costs_issue_slot(self):
        s = TraceSimulator(sve_gem5())
        a = s.alloc("A", 4096)
        s.sw_prefetch(a.base, 256)
        assert s.stats.cycles > 0
        assert s.stats.sw_prefetches == 0  # did not actually prefetch

    def test_a64fx_honours_prefetch(self):
        s = TraceSimulator(a64fx())
        a = s.alloc("A", 4096)
        s.sw_prefetch(a.base, 256, "L1")
        assert s.stats.sw_prefetches == 1
        before = s.stats.l1_misses
        s.vload(a.base, 16)
        assert s.stats.l1_misses == before  # prefetched -> hit


class TestSampling:
    def test_small_loop_runs_fully(self, sim):
        seen = list(sim.loop(5, warmup=2, sample=8))
        assert seen == [0, 1, 2, 3, 4]

    def test_sampled_loop_weights_cycles(self):
        """A loop of N identical iterations must cost ~N x one iteration."""
        full = TraceSimulator(rvv_gem5())
        sampled = TraceSimulator(rvv_gem5())
        n = 500
        for _ in range(n):
            full.scalar(7)
        for _ in sampled.loop(n, warmup=4, sample=8):
            sampled.scalar(7)
        assert sampled.stats.cycles == pytest.approx(full.stats.cycles, rel=1e-9)

    def test_sampled_memory_stats_scale(self):
        """Streaming loads: weighted miss counts track the full run."""
        n = 400
        full = TraceSimulator(rvv_gem5())
        a = full.alloc("A", n * 64)
        for i in range(n):
            full.vload(a.base + i * 64, 16)
        sampled = TraceSimulator(rvv_gem5())
        b = sampled.alloc("A", n * 64)
        for i in sampled.loop(n, warmup=4, sample=8):
            sampled.vload(b.base + i * 64, 16)
        assert sampled.stats.l2_misses == pytest.approx(full.stats.l2_misses, rel=0.05)

    def test_nested_sampling_weights_multiply(self):
        s = TraceSimulator(rvv_gem5())
        for _ in s.loop(100, warmup=2, sample=4):
            for _ in s.loop(50, warmup=2, sample=4):
                s.scalar(1)
        assert s.stats.cycles == pytest.approx(100 * 50, rel=1e-9)

    def test_weight_restored_after_loop(self, sim):
        for _ in sim.loop(100, warmup=1, sample=2):
            pass
        sim.scalar(1)
        assert sim._w == 1.0

    def test_region_context(self, sim):
        with sim.region(10.0):
            sim.scalar(3)
        assert sim.stats.cycles == 30
        sim.scalar(1)
        assert sim.stats.cycles == 31

    def test_region_negative_rejected(self, sim):
        with pytest.raises(ValueError), sim.region(-1):
            pass

    @given(n=st.integers(1, 2000), w=st.integers(0, 8), s=st.integers(1, 16))
    @settings(max_examples=40)
    def test_sampled_scalar_total_exact(self, n, w, s):
        sim = TraceSimulator(rvv_gem5())
        for _ in sim.loop(n, warmup=w, sample=s):
            sim.scalar(1)
        assert sim.stats.cycles == pytest.approx(n, rel=1e-9)


class TestAttribution:
    def test_kernel_labels(self, sim):
        with sim.kernel("gemm"):
            sim.scalar(10)
        with sim.kernel("im2col"):
            sim.scalar(5)
        sim.scalar(1)
        kc = sim.stats.kernel_cycles
        assert kc["gemm"] == 10 and kc["im2col"] == 5 and kc["other"] == 1

    def test_nested_kernel_attribution(self, sim):
        with sim.kernel("conv"):
            with sim.kernel("gemm"):
                sim.scalar(2)
            sim.scalar(3)
        kc = sim.stats.kernel_cycles
        assert kc["gemm"] == 2 and kc["conv"] == 3


class TestSimStats:
    def test_merge(self):
        a, b = SimStats(), SimStats()
        a.cycles, b.cycles = 10, 5
        a.kernel_cycles["g"] = 10
        b.kernel_cycles["g"] = 5
        b.kernel_cycles["w"] = 1
        a.merge(b)
        assert a.cycles == 15
        assert a.kernel_cycles == {"g": 15, "w": 1}

    def test_rates_empty(self):
        s = SimStats()
        assert s.l2_miss_rate == 0.0
        assert s.avg_vlen_elems == 0.0
        assert s.gflops_per_sec(2.0) == 0.0

    def test_avg_vlen(self, sim):
        sim.varith(16, 1)
        sim.varith(8, 1)
        assert sim.stats.avg_vlen_elems == 12
        assert sim.stats.avg_vlen_bits == 384

    def test_gflops(self):
        s = SimStats()
        s.flops, s.cycles = 64, 2
        assert s.gflops_per_sec(2.0) == 64.0

    def test_seconds(self, sim):
        sim.scalar(2_000_000_000)
        assert sim.seconds() == pytest.approx(1.0)


class TestOoOHiding:
    def test_a64fx_hides_more_stall_than_inorder(self):
        """Same miss, less exposed latency on the OoO machine."""

        def exposed(cfg):
            s = TraceSimulator(cfg)
            a = s.alloc("A", 4096)
            s.vload(a.base, 16)  # cold miss
            miss = s.stats.cycles
            s.vload(a.base, 16)  # hit
            return miss - (s.stats.cycles - miss)

        assert exposed(a64fx()) < exposed(sve_gem5())
