"""Vectorized shared-pass engine: bitwise identity vs the Python oracle.

``repro.machine.replay_vec._shared_pass_vec`` re-implements the
per-event reference loop (``replay._shared_pass_python``) with columnar
NumPy passes.  The contract is the same strict one the rest of the
replay engine lives under: the program it emits must price every design
point to ``SimStats`` bitwise identical (``float.hex`` equal) to the
oracle's — across presets, kernel policies, deferred-VPU mode, and a
synthetic trace exercising every opcode.  These tests are the tripwire
for any drift between the two engines.
"""

import pytest

from repro.machine import a64fx, rvv_gem5, sve_gem5
from repro.machine.replay import (
    _replay_engine,
    _run_points,
    _shared_pass,
    _shared_pass_python,
)
from repro.machine.replay_vec import _shared_pass_vec
from repro.machine.simulator import SimStats
from repro.machine.trace import TraceRecorder
from repro.nets import ConvLayer, KernelPolicy, MaxPoolLayer, Network


def small_net():
    return Network(
        [ConvLayer(8, 3, 1), MaxPoolLayer(2, 2), ConvLayer(16, 3, 1)],
        input_shape=(4, 32, 32),
        name="small",
    )


def capture(machine, policy):
    rec = TraceRecorder(machine)
    small_net()._emit_trace(rec, policy, None, True)
    return rec.finish(key="vecchk")


def synthetic_trace(machine):
    """One trace touching every opcode the wire format can carry."""
    rec = TraceRecorder(machine)
    a = rec.alloc("a", 1 << 20)
    b = rec.alloc("b", 1 << 20)
    with rec.kernel("k1"):
        rec.scalar(3)
        rec.scalar_load(a.base + 5, 4)
        rec.scalar_load(a.base + 5, 4)
        rec.scalar_store(a.base + 60, 8)  # straddles a line
        rec.scalar_load(a.base + 62, 128)  # multi-line
        rec.vload(a.base, 64, 4, 0)
        rec.vstore(b.base + 3, 33, 4, 4)
        rec.vload(b.base, 16, 4, 68)  # strided
        rec.vstore(a.base + 7, 9, 8, 136)  # strided, straddling
        rec.varith(64, 2, 2.0, 4)
        rec.varith(64, 2, 2.0, 4)
        rec.varith(16, 1, 1.0, 8)
        rec.vbroadcast(2)
        rec.vbroadcast(0)
        rec.count_flops(123.5)
        rec.sw_prefetch(a.base + 4096, 256, "L1")
        rec.sw_prefetch(b.base + 8192, 64, "L2")
        rec.spill(3)
    with rec.region(2.5):
        with rec.kernel("k2"):
            rec.hierarchy.note_resident_range(a.base, 4096)
            rec.vload(a.base + 100000, 128, 4, 0)
            rec.scalar(0)
            rec.spill(1)
            for i in rec.loop(40):
                rec.vload(a.base + 512 * i, 32, 4, 0)
                rec.varith(32, 1, 2.0, 4)
                rec.scalar_load(b.base + 64 * i, 4)
        with rec.kernel("k1"):  # revisit an existing label
            rec.vstore(b.base + 4096, 64, 4, 0)
            rec.scalar(2)
    return rec.finish(key="synth")


def assert_passes_price_identically(trace, machine, defer):
    """Both engines' outputs must price the point bitwise identically.

    Compared through ``_run_points`` rather than item-by-item: deferred
    class ids may be numbered differently between engines, but the
    resolved prices (and every stat) must match exactly.
    """
    py = _shared_pass_python(trace, machine, defer_vpu=defer)
    vec = _shared_pass_vec(trace, machine, defer_vpu=defer)
    assert len(py[0]) == len(vec[0])
    for f in SimStats.FIELDS:
        assert getattr(py[1], f).hex() == getattr(vec[1], f).hex(), f
    a = _run_points(*py, [machine])[0]
    b = _run_points(*vec, [machine])[0]
    for f in SimStats.FIELDS:
        assert getattr(a, f).hex() == getattr(b, f).hex(), f
    assert {k: v.hex() for k, v in a.kernel_cycles.items()} == {
        k: v.hex() for k, v in b.kernel_cycles.items()
    }


MACHINES = [
    pytest.param(lambda: rvv_gem5(vlen_bits=1024, lanes=4), id="rvv"),
    pytest.param(lambda: sve_gem5(vlen_bits=512), id="sve"),
    pytest.param(lambda: a64fx(), id="a64fx"),
]
POLICIES = [
    pytest.param(KernelPolicy(), id="default"),
    pytest.param(KernelPolicy(gemm="6loop", winograd="all3x3"), id="wino"),
]


class TestEngineIdentity:
    @pytest.mark.parametrize("factory", MACHINES)
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("defer", [False, True])
    def test_network_trace(self, factory, policy, defer):
        m = factory()
        trace = capture(m, policy)
        assert_passes_price_identically(trace, m, defer)

    @pytest.mark.parametrize("factory", MACHINES)
    @pytest.mark.parametrize("defer", [False, True])
    def test_synthetic_all_opcodes(self, factory, defer):
        m = factory()
        trace = synthetic_trace(m)
        assert_passes_price_identically(trace, m, defer)

    def test_empty_trace(self):
        m = rvv_gem5(vlen_bits=512)
        rec = TraceRecorder(m)
        trace = rec.finish(key="empty")
        assert_passes_price_identically(trace, m, True)


class TestEngineDispatch:
    def test_default_is_vectorized(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPLAY_ENGINE", raising=False)
        assert _replay_engine() == "vec"

    @pytest.mark.parametrize("val,expect", [
        ("python", "python"), ("vec", "vec"), ("vectorized", "vec"),
    ])
    def test_env_selects_engine(self, monkeypatch, val, expect):
        monkeypatch.setenv("REPRO_REPLAY_ENGINE", val)
        assert _replay_engine() == expect

    def test_invalid_engine_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_ENGINE", "cuda")
        with pytest.raises(ValueError, match="REPRO_REPLAY_ENGINE"):
            _replay_engine()

    def test_dispatch_is_bitwise_equivalent(self, monkeypatch):
        m = rvv_gem5(vlen_bits=1024, lanes=4)
        trace = capture(m, KernelPolicy())
        monkeypatch.setenv("REPRO_REPLAY_ENGINE", "python")
        via_py = _run_points(*_shared_pass(trace, m, defer_vpu=True), [m])[0]
        monkeypatch.setenv("REPRO_REPLAY_ENGINE", "vec")
        via_vec = _run_points(*_shared_pass(trace, m, defer_vpu=True), [m])[0]
        for f in SimStats.FIELDS:
            assert getattr(via_py, f).hex() == getattr(via_vec, f).hex(), f
