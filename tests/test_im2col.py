"""Tests for im2col/col2im against explicit window enumeration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import ConvSpec, col2im, im2col
from repro.machine import TraceSimulator, rvv_gem5


def reference_im2col(x, spec):
    """Direct (slow) window enumeration matching Darknet's im2col_cpu."""
    c, h, w = x.shape
    k, s, p = spec.ksize, spec.stride, spec.pad
    out = np.zeros((spec.K, spec.N), dtype=x.dtype)
    for row in range(spec.K):
        ch = row // (k * k)
        ky = (row // k) % k
        kx = row % k
        col = 0
        for oy in range(spec.out_h):
            for ox in range(spec.out_w):
                iy, ix = ky + s * oy - p, kx + s * ox - p
                if 0 <= iy < h and 0 <= ix < w:
                    out[row, col] = x[ch, iy, ix]
                col += 1
    return out


@pytest.mark.parametrize(
    "spec",
    [
        ConvSpec(1, 5, 5, 1, 3, 1, 1),
        ConvSpec(3, 8, 6, 2, 3, 1, 1),
        ConvSpec(2, 9, 9, 2, 3, 2, 1),
        ConvSpec(4, 7, 7, 3, 1, 1, 0),
        ConvSpec(2, 12, 10, 2, 5, 1, 2),
        ConvSpec(2, 11, 11, 2, 3, 2, 0),
    ],
)
def test_matches_reference(spec):
    rng = np.random.default_rng(42)
    x = rng.standard_normal((spec.in_channels, spec.in_h, spec.in_w)).astype(np.float32)
    np.testing.assert_array_equal(im2col(x, spec), reference_im2col(x, spec))


def test_shape_and_dtype():
    spec = ConvSpec(3, 10, 10, 4, 3, 1, 1)
    x = np.ones((3, 10, 10), dtype=np.float32)
    cols = im2col(x, spec)
    assert cols.shape == (spec.K, spec.N)
    assert cols.dtype == np.float32


def test_padding_reads_zero():
    spec = ConvSpec(1, 3, 3, 1, 3, 1, 1)
    x = np.ones((1, 3, 3), dtype=np.float32)
    cols = im2col(x, spec)
    # Column 0 is the top-left window: 4 taps in-bounds, 5 padded zeros.
    assert cols[:, 0].sum() == 4


def test_wrong_input_shape_rejected():
    spec = ConvSpec(3, 10, 10, 4)
    with pytest.raises(ValueError):
        im2col(np.zeros((3, 9, 10), dtype=np.float32), spec)


def test_1x1_is_reshape():
    spec = ConvSpec(4, 6, 6, 2, ksize=1, stride=1, pad=0)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((4, 6, 6)).astype(np.float32)
    np.testing.assert_array_equal(im2col(x, spec), x.reshape(4, 36))


class TestCol2Im:
    def test_shape_mismatch_rejected(self):
        spec = ConvSpec(2, 6, 6, 2)
        with pytest.raises(ValueError):
            col2im(np.zeros((3, 3), dtype=np.float32), spec)

    @given(seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_adjoint_property(self, seed):
        """<im2col(x), y> == <x, col2im(y)> — im2col/col2im are adjoint
        linear maps, a strong structural invariant."""
        spec = ConvSpec(2, 7, 6, 2, 3, 2, 1)
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((2, 7, 6)).astype(np.float64)
        y = rng.standard_normal((spec.K, spec.N)).astype(np.float64)
        lhs = float((im2col(x, spec) * y).sum())
        rhs = float((x * col2im(y, spec)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9)


class TestTrace:
    def test_trace_attributes_to_im2col(self):
        from repro.kernels import trace_im2col

        sim = TraceSimulator(rvv_gem5())
        spec = ConvSpec(8, 32, 32, 8, 3, 1, 1)
        src = sim.alloc("x", spec.in_channels * spec.in_h * spec.in_w * 4)
        dst = sim.alloc("cols", spec.K * spec.N * 4)
        trace_im2col(sim, spec, src.base, dst.base)
        assert sim.stats.kernel_cycles.get("im2col", 0) > 0
        assert sim.stats.bytes_stored > 0

    def test_trace_strided_costs_more(self):
        from repro.kernels import trace_im2col

        def cycles(stride):
            sim = TraceSimulator(rvv_gem5())
            spec = ConvSpec(8, 64, 64, 8, 3, stride, 1)
            src = sim.alloc("x", spec.in_channels * spec.in_h * spec.in_w * 4)
            dst = sim.alloc("cols", spec.K * spec.N * 4)
            trace_im2col(sim, spec, src.base, dst.base)
            # Normalize by elements moved: stride-2 writes 1/4 the data.
            return sim.stats.cycles / (spec.K * spec.N)

        assert cycles(2) > cycles(1)  # strided loads are pricier per elem
