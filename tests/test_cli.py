"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.net == "yolov3" and args.machine == "rvv"
        assert args.gemm == "3loop" and args.vlen == 512

    def test_sweep_axis(self):
        args = build_parser().parse_args(
            ["sweep", "--axis", "cache", "--values", "1", "8"]
        )
        assert args.axis == "cache" and args.values == [1, 8]

    def test_invalid_choice(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--gemm", "12loop"])


class TestCommands:
    def test_simulate(self, capsys):
        rc = main(
            ["simulate", "--net", "yolov3-tiny", "--layers", "3", "--vlen", "2048"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "rvv" in out

    def test_simulate_a64fx(self, capsys):
        rc = main(["simulate", "--net", "yolov3-tiny", "--layers", "2",
                   "--machine", "a64fx", "--gemm", "6loop"])
        assert rc == 0
        assert "a64fx" in capsys.readouterr().out

    def test_sweep_vlen(self, capsys):
        rc = main(
            ["sweep", "--net", "yolov3-tiny", "--layers", "3",
             "--axis", "vlen", "--values", "512", "2048"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "2048" in out

    def test_sweep_sve_filters_vlen(self, capsys):
        rc = main(
            ["sweep", "--net", "yolov3-tiny", "--layers", "2", "--machine", "sve",
             "--axis", "vlen", "--values", "512", "8192"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "8192" not in out  # beyond the SVE MVL, dropped

    def test_sweep_lanes(self, capsys):
        rc = main(
            ["sweep", "--net", "yolov3-tiny", "--layers", "2",
             "--axis", "lanes", "--values", "2", "8"]
        )
        assert rc == 0
        assert "lanes" in capsys.readouterr().out

    def test_profile(self, capsys):
        rc = main(["profile", "--net", "yolov3-tiny", "--layers", "4"])
        assert rc == 0
        assert "gemm" in capsys.readouterr().out

    def test_select_rule(self, capsys):
        rc = main(["select", "--net", "vgg16"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "winograd" in out

    def test_roofline_runs(self, capsys):
        rc = main(["roofline"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "L44" in out and "%peak" in out
