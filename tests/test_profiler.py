"""Tests for the per-kernel profiler (paper Section II-B)."""

import pytest

from repro.machine import a64fx, rvv_gem5
from repro.nets import ConvLayer, KernelPolicy, Network, profile_network, yolov3


def net():
    return Network(
        [ConvLayer(16, 3, 1), ConvLayer(32, 3, 2), ConvLayer(16, 1, 1, pad=0)],
        input_shape=(8, 32, 32),
    )


class TestProfiler:
    def test_shares_sum_to_one(self):
        prof = profile_network(net(), rvv_gem5(512))
        assert sum(prof.shares.values()) == pytest.approx(1.0, abs=1e-6)

    def test_gemm_dominates(self):
        """Section II-B: GEMM consumes ~93.4% of YOLOv3 compute time.

        Our simulated breakdown lands in the same high-80s/90s band."""
        prof = profile_network(yolov3(), a64fx(), KernelPolicy(gemm="6loop"))
        assert prof.share("gemm") > 0.75
        assert prof.share("gemm") > 5 * prof.share("im2col")

    def test_winograd_rollup(self):
        prof = profile_network(
            net(), a64fx(), KernelPolicy(gemm="6loop", winograd="stride1")
        )
        assert prof.share("winograd") > 0
        assert "wino_tuple_mult" not in prof.shares  # rolled up

    def test_top(self):
        prof = profile_network(net(), rvv_gem5(512))
        top = prof.top(2)
        assert len(top) == 2
        assert top[0][1] >= top[1][1]
        # For tiny layers im2col rivals GEMM; both must lead the profile.
        assert {top[0][0], top[1][0]} == {"gemm", "im2col"}

    def test_format_table(self):
        prof = profile_network(net(), rvv_gem5(512))
        out = prof.format_table()
        assert "gemm" in out and "%" in out

    def test_share_absent_kernel(self):
        prof = profile_network(net(), rvv_gem5(512))
        assert prof.share("fft") == 0.0
