"""Durable job layer: job store, leases, scheduler, sealing, GC.

Every test drives the production code paths (:mod:`repro.service`) in
an isolated ``.simcache/``, with injected faults where the contract is
about crash windows — and asserts the durable-jobs contract end to
end: content-derived ids dedup identical grids, orphaned jobs are
adopted with bitwise-identical results, sealed records answer warm
with zero simulations, and GC only removes derivable or stale state.
"""

import json
import os
import time

import pytest

from repro.cli import main as cli_main
from repro.core import tracecache
from repro.core.codesign import sweep
from repro.core.resilience import (
    Journal,
    RetryPolicy,
    journal_path,
    list_quarantined,
    list_sealed,
    load_sealed,
    seal_journal,
    sealed_path,
    stats_payload,
)
from repro.machine import rvv_gem5
from repro.nets import ConvLayer, KernelPolicy, MaxPoolLayer, Network
from repro.service import jobs as jobstore
from repro.service import scheduler
from repro.testing.faults import FAULTS_ENV, FaultSpec, install_faults


@pytest.fixture()
def cache_env(tmp_path, monkeypatch):
    """Isolated .simcache/ (jobs/journal/quarantine/traces under it)."""
    monkeypatch.setenv("REPRO_SIMCACHE_DIR", str(tmp_path / ".simcache"))
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    monkeypatch.delenv("REPRO_SIMCACHE", raising=False)
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_LEASE_TTL", raising=False)
    monkeypatch.delenv("REPRO_HEARTBEAT", raising=False)
    monkeypatch.delenv("REPRO_MAX_JOBS", raising=False)
    tracecache.clear_registry()
    yield tmp_path
    tracecache.clear_registry()


@pytest.fixture()
def fault_env(cache_env, monkeypatch):
    """Returns ``arm(*specs)``: installs a fault schedule for this test."""

    def arm(*specs):
        path = install_faults(str(cache_env / "faults.json"), specs)
        monkeypatch.setenv(FAULTS_ENV, path)
        return path

    return arm


def small_net(name="small"):
    return Network(
        [ConvLayer(8, 3, 1), MaxPoolLayer(2, 2), ConvLayer(16, 3, 1)],
        input_shape=(4, 16, 16),
        name=name,
    )


#: Minimal spec resolvable by the scheduler (the CLI zoo's smallest
#: real network, two layers, two points).
SPEC = {
    "net": "yolov3-tiny", "machine": "rvv", "vlen": 512, "lanes": 8,
    "l2_mb": 1, "gemm": "3loop", "winograd": "off", "layers": 2,
    "axis": "cache", "values": [1, 2],
}

FAST = RetryPolicy(max_retries=1, backoff_s=0.001, max_backoff_s=0.01)


def payloads(result):
    return [stats_payload(s) for s in result.stats]


# ----------------------------------------------------------------------
# Job store: ids, records, crash safety
# ----------------------------------------------------------------------

class TestJobStore:
    def test_job_id_is_content_derived_and_stable(self, cache_env):
        k1, n1 = scheduler.spec_key(SPEC)
        k2, n2 = scheduler.spec_key(dict(SPEC))
        assert (k1, n1) == (k2, n2)
        assert jobstore.job_id_for(k1) == k1[:16]
        # A different grid is a different job.
        k3, _ = scheduler.spec_key({**SPEC, "values": [1, 4]})
        assert k3 != k1

    def test_submit_registers_then_dedups(self, cache_env):
        key, n = scheduler.spec_key(SPEC)
        rec, created = jobstore.submit(key, n, SPEC)
        assert created and rec.state == "queued"
        assert rec.spec["net"] == "yolov3-tiny"
        rec2, created2 = jobstore.submit(key, n, SPEC)
        assert not created2 and rec2.job_id == rec.job_id

    def test_resubmit_requeues_terminal_failures(self, cache_env):
        key, n = jobstore.job_id_for("f" * 64), 2
        key = "f" * 64
        rec, _ = jobstore.submit(key, n, SPEC)
        jobstore.record_state(rec.job_id, "failed", error="boom")
        assert jobstore.load(rec.job_id).state == "failed"
        rec2, created = jobstore.submit(key, n, SPEC)
        assert not created and rec2.state == "queued"

    def test_corrupt_record_lines_are_skipped(self, cache_env):
        key = "a" * 64
        rec, _ = jobstore.submit(key, 2, SPEC)
        path = os.path.join(jobstore.job_dir(rec.job_id), "record.jsonl")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "state", "state": "done"}\n')  # no digest
            fh.write("not json at all\n")
        reloaded = jobstore.load(rec.job_id)
        assert reloaded.state == "queued"  # forged/torn lines ignored
        jobstore.record_state(rec.job_id, "running", owner="t")
        assert jobstore.load(rec.job_id).state == "running"

    def test_resolve_prefix(self, cache_env):
        key, n = scheduler.spec_key(SPEC)
        rec, _ = jobstore.submit(key, n, SPEC)
        assert jobstore.resolve(rec.job_id[:6]) == rec.job_id
        assert jobstore.resolve("zzzz") is None


# ----------------------------------------------------------------------
# Leases: acquire, renew, expiry, adoption
# ----------------------------------------------------------------------

class TestLeases:
    def test_acquire_renew_release(self, cache_env):
        lease = jobstore.acquire("job1")
        assert lease is not None and not lease.adopted
        assert jobstore.lease_state("job1")[0] == "live"
        lease.renew()
        assert jobstore.lease_state("job1")[0] == "live"
        # Second acquisition is refused while the owner lives.
        assert jobstore.acquire("job1") is None
        lease.release()
        assert jobstore.lease_state("job1")[0] == "none"

    def test_ttl_expiry_makes_lease_stale(self, cache_env, monkeypatch):
        lease = jobstore.acquire("job1", ttl=100.0)
        state, doc = jobstore.lease_state("job1", now=time.time() + 101.0)
        assert state == "stale"
        taken = jobstore.acquire("job1")  # dead-pid probe: same live pid
        assert taken is None or taken.adopted  # TTL not yet expired in real time

    def test_dead_owner_is_adoptable_immediately(self, cache_env):
        lease = jobstore.acquire("job1")
        # Forge the lease to a dead same-host pid: adoptable at once,
        # regardless of TTL.
        doc = jobstore._read_lease("job1")
        doc["pid"] = 2 ** 22 + 1  # beyond default pid_max
        jobstore._write_lease("job1", doc)
        assert jobstore.lease_state("job1")[0] == "stale"
        adopted = jobstore.acquire("job1")
        assert adopted is not None and adopted.adopted
        adopted.release()

    def test_acquire_race_has_one_winner(self, cache_env):
        a = jobstore.acquire("job1")
        assert a is not None
        a.release()
        b = jobstore.acquire("job1")
        # a's token no longer matches; releasing again must not clobber b.
        a.release()
        assert jobstore.lease_state("job1")[0] == "live"
        b.release()


# ----------------------------------------------------------------------
# Scheduler: run, dedup, adoption, cancel, max-jobs gate
# ----------------------------------------------------------------------

class TestScheduler:
    def test_submit_and_run_completes_and_seals(self, cache_env):
        out = scheduler.submit_and_run(SPEC, retry=FAST)
        assert out.state == "done" and not out.attached
        assert out.sealed and out.result is not None
        assert jobstore.load(out.job_id).state == "done"
        key, n = scheduler.spec_key(SPEC)
        assert load_sealed(key, n) is not None
        assert not os.path.exists(journal_path(key))  # compacted away

    def test_duplicate_submission_answers_sealed_zero_sims(self, cache_env):
        first = scheduler.submit_and_run(SPEC, retry=FAST)
        second = scheduler.submit_and_run(SPEC, retry=FAST)
        assert second.attached and second.sealed
        assert second.result.sources == ["sealed"] * 2
        assert payloads(first.result) == payloads(second.result)  # bitwise

    def test_sealed_answer_matches_plain_sweep(self, cache_env):
        """The sealed warm path is bitwise-identical to direct sweep()."""
        out = scheduler.submit_and_run(SPEC, retry=FAST)
        net, policy, axis_name, values, factory = scheduler.resolve_spec(SPEC)
        direct = sweep(net, axis_name, values, factory, policy,
                       SPEC.get("layers"))
        assert payloads(out.result) == payloads(direct)

    def test_adoption_resumes_bitwise(self, cache_env):
        """A dead owner's journal is adopted and finished identically."""
        baseline = scheduler.submit_and_run(SPEC, retry=FAST)
        # Fresh grid (different values) interrupted after one point:
        spec = {**SPEC, "values": [1, 2, 4]}
        key, n = scheduler.spec_key(spec)
        net, policy, axis_name, values, factory = scheduler.resolve_spec(spec)
        clean = sweep(net, axis_name, values, factory, policy, spec["layers"])
        # Simulate the dead owner: journal one point, leave a stale lease.
        journal = Journal.open(key, n)
        journal.record_point(0, clean.stats[0], "captured")
        journal.close()
        rec, _ = jobstore.submit(key, n, spec)
        jobstore.record_state(rec.job_id, "running", owner="dead")
        lease = jobstore.acquire(rec.job_id)
        doc = jobstore._read_lease(rec.job_id)
        doc["pid"] = 2 ** 22 + 1
        jobstore._write_lease(rec.job_id, doc)
        out = scheduler.submit_and_run(spec, retry=FAST)
        assert out.adopted and out.state == "done"
        assert out.result.sources[0] in ("journal", "sealed")
        assert payloads(out.result) == [stats_payload(s) for s in clean.stats]

    def test_attach_no_wait_reports_live_owner(self, cache_env):
        key, n = scheduler.spec_key(SPEC)
        rec, _ = jobstore.submit(key, n, SPEC)
        lease = jobstore.acquire(rec.job_id)
        jobstore.record_state(rec.job_id, "running", owner=lease.token)
        out = scheduler.submit_and_run(SPEC, wait=False)
        assert out.attached and out.state == "running"
        assert out.result is None  # attached, simulated nothing
        lease.release()

    def test_cancel_queued_job_is_immediate(self, cache_env):
        key, n = scheduler.spec_key(SPEC)
        rec, _ = jobstore.submit(key, n, SPEC)
        assert jobstore.request_cancel(rec.job_id) == "cancelled"
        assert jobstore.load(rec.job_id).state == "cancelled"
        assert not jobstore.cancel_requested(rec.job_id)  # marker consumed
        # Resubmission expresses fresh intent: requeued and runnable.
        out = scheduler.submit_and_run(SPEC, retry=FAST)
        assert out.state == "done"

    def test_cancel_mid_run_via_heartbeat(self, cache_env):
        """A pre-armed cancel marker stops the run at the first beat."""
        key, n = scheduler.spec_key(SPEC)
        rec, _ = jobstore.submit(key, n, SPEC)
        lease = jobstore.acquire(rec.job_id)
        # Running owner exists, so request_cancel leaves the marker.
        jobstore.record_state(rec.job_id, "running", owner=lease.token)
        assert jobstore.request_cancel(rec.job_id) == "cancel-requested"
        assert jobstore.cancel_requested(rec.job_id)
        hb = scheduler.Heartbeat(lease)
        with pytest.raises(scheduler.JobCancelled):
            hb()
        lease.release()

    def test_max_jobs_gate_queues(self, cache_env, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_JOBS", "1")
        other_key = "b" * 64
        rec, _ = jobstore.submit(other_key, 1, {**SPEC, "values": [9]})
        lease = jobstore.acquire(rec.job_id)
        jobstore.record_state(rec.job_id, "running", owner=lease.token)
        out = scheduler.submit_and_run(SPEC, wait=False)
        assert out.state == "queued" and out.result is None
        lease.release()
        out = scheduler.submit_and_run(SPEC, wait=False, retry=FAST)
        assert out.state == "done"


# ----------------------------------------------------------------------
# Sealing: round-trip safety, crash window, corruption
# ----------------------------------------------------------------------

class TestSealing:
    def _complete_journal(self, spec=SPEC):
        net, policy, axis_name, values, factory = scheduler.resolve_spec(spec)
        result = sweep(net, axis_name, values, factory, policy,
                       spec["layers"], resume=True)
        key, n = scheduler.spec_key(spec)
        return key, n, result

    def test_seal_round_trip_then_unlink(self, cache_env):
        key, n, result = self._complete_journal()
        assert os.path.exists(journal_path(key))
        sealed = seal_journal(key, n, meta={"net": SPEC["net"]})
        assert sealed is not None
        assert not os.path.exists(journal_path(key))
        loaded = load_sealed(key, n)
        assert loaded["meta"]["net"] == SPEC["net"]
        assert [p for p in loaded["points"]] == payloads(result)

    def test_seal_requires_complete_journal(self, cache_env):
        journal = Journal.open("c" * 64, 3)
        net, policy, axis_name, values, factory = scheduler.resolve_spec(SPEC)
        stats = sweep(net, axis_name, values, factory, policy, 1).stats
        journal.record_point(0, stats[0], "captured")
        journal.close()
        assert seal_journal("c" * 64, 3) is None
        assert os.path.exists(journal_path("c" * 64))  # untouched

    def test_crash_between_write_and_unlink_is_recoverable(
        self, cache_env, fault_env
    ):
        """The compaction crash window leaves a valid (sealed, journal)
        pair; either half answers, and gc finishes the protocol."""
        key, n, result = self._complete_journal()
        fault_env(FaultSpec(site="journal.seal", kind="raise"))
        with pytest.raises(Exception):
            seal_journal(key, n)
        # Both halves exist and agree.
        assert os.path.exists(sealed_path(key))
        assert os.path.exists(journal_path(key))
        assert load_sealed(key, n) is not None
        # gc (faults disarmed) completes write -> verify -> unlink.
        os.environ.pop(FAULTS_ENV, None)
        rec, _ = jobstore.submit(key, n, SPEC)
        actions = jobstore.gc_state()
        assert any(a["kind"] == "journal" for a in actions)
        assert not os.path.exists(journal_path(key))
        assert load_sealed(key, n) is not None

    def test_corrupt_sealed_record_quarantined_journal_wins(self, cache_env):
        key, n, result = self._complete_journal()
        sealed = seal_journal(key, n)
        assert sealed is not None
        path = sealed_path(key)
        with open(path, "r+", encoding="utf-8") as fh:
            doc = json.load(fh)
            doc["payload"]["points"][0]["fields"]["cycles"] = 0.0
            fh.seek(0)
            json.dump(doc, fh)
            fh.truncate()
        assert load_sealed(key, n) is None  # digest check fails
        assert not os.path.exists(path)  # never served twice
        assert list_quarantined()
        # The next resume run recomputes (and can re-seal).
        net, policy, axis_name, values, factory = scheduler.resolve_spec(SPEC)
        again = sweep(net, axis_name, values, factory, policy,
                      SPEC["layers"], resume=True)
        assert payloads(again) == payloads(result)

    def test_sweep_resume_answers_from_sealed(self, cache_env):
        key, n, result = self._complete_journal()
        seal_journal(key, n)
        net, policy, axis_name, values, factory = scheduler.resolve_spec(SPEC)
        warm = sweep(net, axis_name, values, factory, policy,
                     SPEC["layers"], resume=True)
        assert warm.sources == ["sealed"] * n
        assert payloads(warm) == payloads(result)

    def test_list_sealed_reports(self, cache_env):
        key, n, _ = self._complete_journal()
        seal_journal(key, n, meta={"job_id": "x"})
        rows = list_sealed()
        assert len(rows) == 1
        assert rows[0]["sweep_key"] == key and rows[0]["n_points"] == n


# ----------------------------------------------------------------------
# GC policy
# ----------------------------------------------------------------------

class TestGc:
    def test_gc_empty_store_is_noop(self, cache_env):
        assert jobstore.gc_state() == []

    def test_gc_prunes_stale_lease_and_cancel_marker(self, cache_env):
        key, n = scheduler.spec_key(SPEC)
        rec, _ = jobstore.submit(key, n, SPEC)
        lease = jobstore.acquire(rec.job_id)
        doc = jobstore._read_lease(rec.job_id)
        doc["pid"] = 2 ** 22 + 1
        jobstore._write_lease(rec.job_id, doc)
        jobstore.record_state(rec.job_id, "done")
        # Forge a leftover cancel marker on the terminal job.
        with open(os.path.join(jobstore.job_dir(rec.job_id), "cancel.json"),
                  "w", encoding="utf-8") as fh:
            fh.write("{}")
        dry = jobstore.gc_state(dry_run=True)
        assert {a["kind"] for a in dry} == {"lease", "cancel-marker"}
        assert all(a["action"] == "would-remove" for a in dry)
        # Dry run removed nothing.
        assert jobstore.cancel_requested(rec.job_id)
        wet = jobstore.gc_state()
        assert {a["kind"] for a in wet} == {"lease", "cancel-marker"}
        assert not jobstore.cancel_requested(rec.job_id)
        assert jobstore.lease_state(rec.job_id)[0] == "none"
        # Job record survives: it is the durable answer's address.
        assert jobstore.load(rec.job_id) is not None

    def test_gc_keeps_live_state(self, cache_env):
        key, n = scheduler.spec_key(SPEC)
        rec, _ = jobstore.submit(key, n, SPEC)
        lease = jobstore.acquire(rec.job_id)
        jobstore.record_state(rec.job_id, "running", owner=lease.token)
        assert jobstore.gc_state() == []
        lease.release()

    def test_gc_prunes_orphan_quarantine_sidecar(self, cache_env):
        from repro.core.resilience import quarantine, quarantine_dir

        victim = cache_env / "bad.json"
        victim.write_text("junk")
        quarantine(str(victim), "test corruption")
        # Delete the quarantined data file, orphaning its sidecar.
        qdir = quarantine_dir()
        for name in sorted(os.listdir(qdir)):
            if not name.endswith(".reason.json"):
                os.unlink(os.path.join(qdir, name))
        actions = jobstore.gc_state()
        assert [a["kind"] for a in actions] == ["sidecar"]
        assert os.listdir(qdir) == []


# ----------------------------------------------------------------------
# Analysis integration: stale-lease vs orphaned-journal
# ----------------------------------------------------------------------

class TestCacheStateRules:
    def _orphan_journal(self, spec):
        key, n = scheduler.spec_key(spec)
        net, policy, axis_name, values, factory = scheduler.resolve_spec(spec)
        stats = sweep(net, axis_name, values, factory, policy, 1).stats
        journal = Journal.open(key, n)
        journal.record_point(0, stats[0], "captured")
        journal.close()
        return key, n

    def test_unaddressed_journal_is_orphaned(self, cache_env):
        from repro.analysis.cachestate import cache_state_findings

        self._orphan_journal(SPEC)
        findings = cache_state_findings(min_age_s=0.0)
        assert [f.rule for f in findings] == ["sweep/orphaned-journal"]

    def test_stale_leased_journal_is_adoptable(self, cache_env):
        from repro.analysis.cachestate import cache_state_findings

        key, n = self._orphan_journal(SPEC)
        rec, _ = jobstore.submit(key, n, SPEC)
        jobstore.record_state(rec.job_id, "running", owner="dead")
        lease = jobstore.acquire(rec.job_id)
        doc = jobstore._read_lease(rec.job_id)
        doc["pid"] = 2 ** 22 + 1
        jobstore._write_lease(rec.job_id, doc)
        findings = cache_state_findings(min_age_s=0.0)
        assert [f.rule for f in findings] == ["sweep/stale-lease"]
        assert findings[0].detail["job"] == rec.job_id
        assert "repro submit" in findings[0].message

    def test_live_leased_journal_is_silent(self, cache_env):
        from repro.analysis.cachestate import cache_state_findings

        key, n = self._orphan_journal(SPEC)
        rec, _ = jobstore.submit(key, n, SPEC)
        lease = jobstore.acquire(rec.job_id)
        jobstore.record_state(rec.job_id, "running", owner=lease.token)
        assert cache_state_findings(min_age_s=0.0) == []
        lease.release()

    def test_stale_lease_rule_is_registered(self):
        from repro.analysis.rules import RULES

        assert "sweep/stale-lease" in RULES
        severity, pass_name, _desc = RULES["sweep/stale-lease"]
        assert severity == "warning" and pass_name == "cachestate"


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------

SUBMIT = ["submit", "--net", "yolov3-tiny", "--layers", "2",
          "--axis", "cache", "--values", "1", "2"]


class TestCli:
    def test_submit_status_results_roundtrip(self, cache_env, capsys):
        assert cli_main([*SUBMIT, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["state"] == "done" and doc["sealed"]
        job = doc["job"]
        assert cli_main(["status", job, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["state"] == "done" and status["sealed"]
        assert cli_main(["results", job, "--json"]) == 0
        results = json.loads(capsys.readouterr().out)
        assert results["sealed"]
        # Bitwise: results' stats equal the submit run's stats.
        assert [p["stats"] for p in results["points"]] == \
            [p["stats"] for p in doc["points"]]

    def test_submit_dedup_via_cli(self, cache_env, capsys):
        assert cli_main([*SUBMIT, "--json"]) == 0
        capsys.readouterr()
        assert cli_main([*SUBMIT, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["attached"] and doc["sealed"]
        assert [p["source"] for p in doc["points"]] == ["sealed", "sealed"]

    def test_jobs_list_and_gc(self, cache_env, capsys):
        assert cli_main([*SUBMIT, "--json"]) == 0
        capsys.readouterr()
        assert cli_main(["jobs", "list", "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert len(listing["jobs"]) == 1
        assert listing["jobs"][0]["sealed"] is True
        assert cli_main(["jobs", "gc", "--dry-run", "--json"]) == 0
        gc = json.loads(capsys.readouterr().out)
        assert gc["summary"]["dry_run"] is True

    def test_cancel_queued_via_cli(self, cache_env, capsys):
        key, n = scheduler.spec_key(SPEC)
        rec, _ = jobstore.submit(key, n, SPEC)
        assert cli_main(["cancel", rec.job_id, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["state"] == "cancelled"

    def test_unknown_job_exits_2(self, cache_env, capsys):
        assert cli_main(["status", "nope"]) == 2
        assert cli_main(["results", "nope"]) == 2
        assert cli_main(["cancel", "nope"]) == 2
        capsys.readouterr()

    def test_results_partial_journal_exits_1(self, cache_env, capsys):
        key, n = scheduler.spec_key(SPEC)
        net, policy, axis_name, values, factory = scheduler.resolve_spec(SPEC)
        stats = sweep(net, axis_name, values, factory, policy, 1).stats
        journal = Journal.open(key, n)
        journal.record_point(0, stats[0], "captured")
        journal.close()
        rec, _ = jobstore.submit(key, n, SPEC)
        assert cli_main(["results", rec.job_id, "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["points_available"] == 1 and not doc["sealed"]

    def test_dry_run_reports_sealed_grid(self, cache_env, capsys):
        assert cli_main([*SUBMIT, "--json"]) == 0
        capsys.readouterr()
        args = ["sweep", "--net", "yolov3-tiny", "--layers", "2",
                "--axis", "cache", "--values", "1", "2", "--dry-run",
                "--json"]
        assert cli_main(args) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["sealed"] is True
        assert doc["summary"]["estimated_kernel_runs"] == 0

    def test_dry_run_reports_stale_lease(self, cache_env, capsys):
        key, n = scheduler.spec_key(SPEC)
        rec, _ = jobstore.submit(key, n, SPEC)
        jobstore.record_state(rec.job_id, "running", owner="dead")
        lease = jobstore.acquire(rec.job_id)
        doc = jobstore._read_lease(rec.job_id)
        doc["pid"] = 2 ** 22 + 1
        jobstore._write_lease(rec.job_id, doc)
        args = ["sweep", "--net", "yolov3-tiny", "--layers", "2",
                "--axis", "cache", "--values", "1", "2", "--dry-run",
                "--json"]
        assert cli_main(args) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["summary"]["job"] == rec.job_id
        assert out["summary"]["job_state"] == "running"
        assert out["summary"]["lease"] == "stale"


# ----------------------------------------------------------------------
# Fault sites are registered and wired
# ----------------------------------------------------------------------

class TestFaultSites:
    def test_registry_names_every_site(self):
        assert jobstore.FAULT_SITES == (
            "jobs.record", "jobs.lease", "jobs.heartbeat", "jobs.adopt",
            "jobs.cancel", "journal.seal",
        )

    def test_lease_write_fault_fires(self, cache_env, fault_env):
        from repro.testing.faults import InjectedFault

        fault_env(FaultSpec(site="jobs.lease", kind="raise"))
        with pytest.raises(InjectedFault):
            jobstore.acquire("job1")
        # The crash happened before the write: no lease on disk.
        assert jobstore.lease_state("job1")[0] == "none"

    def test_heartbeat_fault_fires(self, cache_env, fault_env):
        from repro.testing.faults import InjectedFault

        lease = jobstore.acquire("job1")
        fault_env(FaultSpec(site="jobs.heartbeat", kind="raise"))
        with pytest.raises(InjectedFault):
            lease.renew()
        lease.release()

    def test_adopt_fault_fires_only_on_adoption(self, cache_env, fault_env):
        from repro.testing.faults import InjectedFault

        fault_env(FaultSpec(site="jobs.adopt", kind="raise"))
        lease = jobstore.acquire("job1")  # fresh acquire: no adoption
        assert lease is not None
        doc = jobstore._read_lease("job1")
        doc["pid"] = 2 ** 22 + 1
        jobstore._write_lease("job1", doc)
        with pytest.raises(InjectedFault):
            jobstore.acquire("job1")
        # The adopting write landed before the fault: the store shows
        # a fresh live lease (ours), exactly what the read-back would
        # have verified.
        assert jobstore.lease_state("job1")[0] == "live"

    def test_cancel_fault_leaves_no_marker(self, cache_env, fault_env):
        from repro.testing.faults import InjectedFault

        key, n = scheduler.spec_key(SPEC)
        rec, _ = jobstore.submit(key, n, SPEC)
        lease = jobstore.acquire(rec.job_id)
        jobstore.record_state(rec.job_id, "running", owner=lease.token)
        fault_env(FaultSpec(site="jobs.cancel", kind="raise"))
        with pytest.raises(InjectedFault):
            jobstore.request_cancel(rec.job_id)
        assert not jobstore.cancel_requested(rec.job_id)
        lease.release()
