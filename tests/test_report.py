"""Tests for the gem5-style statistics dump."""

from repro.machine import TraceSimulator, dump_gem5_stats, format_gem5_stats, rvv_gem5


def make_stats():
    sim = TraceSimulator(rvv_gem5(1024))
    buf = sim.alloc("x", 4096)
    with sim.kernel("gemm"):
        sim.vload(buf.base, 32)
        sim.varith(32, 4)
    sim.scalar(10)
    return sim


class TestFormat:
    def test_contains_core_counters(self):
        sim = make_stats()
        out = format_gem5_stats(sim.stats, sim.machine)
        assert "sim_cycles" in out
        assert "system.l2.missRate" in out
        assert "kernel.gemm.cycles" in out
        assert "sim_seconds" in out
        assert out.startswith("---------- Begin")

    def test_machine_optional(self):
        sim = make_stats()
        out = format_gem5_stats(sim.stats)
        assert "sim_seconds" not in out
        assert "sim_cycles" in out

    def test_gem5_column_format(self):
        """Every stat line is `name value # description`."""
        sim = make_stats()
        for line in format_gem5_stats(sim.stats).splitlines()[1:-1]:
            if line.startswith("#"):
                continue
            assert "#" in line
            name_value = line.split("#")[0].split()
            assert len(name_value) == 2
            float(name_value[1])  # parses as a number

    def test_dump_roundtrip(self, tmp_path):
        sim = make_stats()
        path = tmp_path / "stats.txt"
        dump_gem5_stats(sim.stats, str(path), sim.machine)
        text = path.read_text()
        assert "End Simulation Statistics" in text
