"""Static cost model (repro.analysis.predict) and model-guided pruning.

Four layers of guarantees:

* **Miss-curve properties** (hypothesis) — for any reuse histogram,
  ``miss(C)`` is bounded in [0, 1] and monotone non-increasing in
  capacity (fully-associative and set-conflict-corrected), and the
  predicted knee is monotone in the coverage target.
* **Calibration gates** — the predicted cycles stay within
  ``DRIFT_BAND`` of a real replay on the yolov3-tiny preset pair, and
  the assoc-corrected knee lands within one power of two of a real
  ``sweep_cache_sizes`` flattening on both presets.
* **Pruning acceptance** — on a 48-point block-size grid the model
  simulates at most 1/5 of the candidates while the survivors still
  contain the exhaustive search's true top-1 (both presets).
* **Plumbing** — autotune/sweep provenance (``pruned-by-model``),
  ``predicted_stats`` rate encodings, drift findings, CLI surfaces.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    DRIFT_BAND,
    check_predict_against_sim,
    gemm_summary,
    predict_cycles,
    predicted_stats,
    summarize_trace,
)
from repro.analysis.reusedist import N_BUCKETS, ReuseReport, reuse_distances
from repro.cli import main
from repro.core import autotune_blocks, sweep_cache_sizes, tracecache, tuned_choice
from repro.kernels import ConvSpec, trace_gemm_6loop
from repro.kernels.gemm_6loop import BlockSizes
from repro.machine import rvv_gem5, sve_gem5
from repro.machine.config import MB
from repro.machine.simulator import TraceSimulator
from repro.nets import KernelPolicy
from repro.nets.zoo import yolov3_tiny

#: The YOLOv3 416x416 layer-2 im2col GEMM (Table II's shape family) —
#: the shape every calibration in this file prices.
M, N, K = 64, 23104, 288

PRESETS = {
    "rvv": lambda **kw: rvv_gem5(vlen_bits=512, l2_mb=1, **kw),
    "sve": lambda **kw: sve_gem5(vlen_bits=512, l2_mb=1, **kw),
}


def _sim_gemm(machine, blocks, unroll=16):
    sim = TraceSimulator(machine)
    a = sim.alloc("A", M * K * 4)
    b = sim.alloc("B", K * N * 4)
    c = sim.alloc("C", M * N * 4)
    trace_gemm_6loop(sim, M, N, K, a.base, b.base, c.base, blocks=blocks,
                     unroll=unroll)
    return sim.stats.cycles


# ----------------------------------------------------------------------
# Miss-curve properties (hypothesis)
# ----------------------------------------------------------------------

def _report(hist, cold):
    h = np.zeros((1, N_BUCKETS))
    h[0, : len(hist)] = hist
    return ReuseReport(
        labels=["x"],
        hist=h,
        cold=np.array([cold]),
        total=np.array([float(h.sum() + cold)]),
        line_bytes=64,
        footprint_lines=np.array([max(1, int(cold))], dtype=np.int64),
    )


masses = st.lists(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    min_size=1, max_size=N_BUCKETS,
)


@settings(max_examples=60, deadline=None)
@given(hist=masses, cold=st.floats(min_value=0.0, max_value=1e9),
       assoc=st.sampled_from([None, 1, 4, 8]))
def test_miss_curve_bounded_and_monotone(hist, cold, assoc):
    """miss(C) lies in [0, 1] and never increases with capacity."""
    rr = _report(hist, cold)
    caps = [64 << b for b in range(0, N_BUCKETS + 2, 2)]
    prev = None
    for cap in caps:
        miss = rr.miss_ratio(cap, assoc=assoc)
        assert 0.0 <= miss <= 1.0 + 1e-12, (cap, miss)
        if prev is not None:
            assert miss <= prev + 1e-9, (cap, miss, prev)
        prev = miss


@settings(max_examples=60, deadline=None)
@given(hist=masses, cold=st.floats(min_value=0.0, max_value=1e9),
       cov=st.tuples(st.floats(min_value=0.5, max_value=0.999),
                     st.floats(min_value=0.5, max_value=0.999)),
       assoc=st.sampled_from([None, 8]))
def test_knee_monotone_in_coverage(hist, cold, cov, assoc):
    """A stricter coverage target can only grow the predicted knee."""
    rr = _report(hist, cold)
    lo, hi = min(cov), max(cov)
    assert rr.predicted_knee_bytes(lo, assoc=assoc) <= rr.predicted_knee_bytes(
        hi, assoc=assoc
    )


# ----------------------------------------------------------------------
# Per-buffer profiles and the trace clock
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def tiny_trace():
    m = PRESETS["rvv"]()
    t, _ = tracecache.get_or_capture(yolov3_tiny(), m, KernelPolicy(), 8)
    return t, m


def test_by_buffer_profile_partitions_mass(tiny_trace):
    """by="buffer" groups the same touch mass as by="kernel"."""
    t, m = tiny_trace
    rk = reuse_distances(t, m)
    rb = reuse_distances(t, m, by="buffer")
    assert rb.labels and set(rb.labels) != set(rk.labels)
    assert np.isclose(rb.total.sum(), rk.total.sum())
    assert np.isclose(rb.cold.sum() + rb.hist.sum(), rk.cold.sum() + rk.hist.sum())


def test_trace_clock_keeps_mass_moves_distances(tiny_trace):
    """clock="trace" re-times distances on the unweighted touch clock
    but keeps the weighted masses; clock="stream" is the default."""
    t, m = tiny_trace
    stream = reuse_distances(t, m)
    default = reuse_distances(t, m, clock="stream")
    traced = reuse_distances(t, m, clock="trace")
    assert np.array_equal(stream.hist, default.hist)
    assert np.isclose(traced.total.sum(), stream.total.sum())
    assert np.isclose(traced.cold.sum(), stream.cold.sum())
    # The sampled-trace clock compresses distances, never inflates them.
    assert traced.predicted_knee_bytes() <= stream.predicted_knee_bytes()
    with pytest.raises(ValueError):
        reuse_distances(t, m, clock="wallclock")


# ----------------------------------------------------------------------
# Calibration gates (the predict-vs-oracle contract)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("preset", sorted(PRESETS))
def test_network_prediction_within_drift_band(preset):
    """Predicted cycles within DRIFT_BAND of a replayed simulation, and
    the drift gate agrees (no predict/* findings)."""
    from repro.machine.replay import replay

    m = PRESETS[preset]()
    t, _ = tracecache.get_or_capture(yolov3_tiny(), m, KernelPolicy(), 20)
    pred = predict_cycles(summarize_trace(t, m), m)
    stats = replay(t, m)
    assert stats.cycles / DRIFT_BAND <= pred.cycles <= stats.cycles * DRIFT_BAND
    assert check_predict_against_sim(pred, stats.cycles, where=preset) == []
    # The decomposition adds up to the headline number.
    total = (pred.compute_cycles + pred.scalar_cycles + pred.memory_cycles
             + pred.stall_cycles + pred.occupancy_cycles)
    assert np.isclose(total, pred.cycles, rtol=1e-6)
    assert pred.buffer_rows and all(r["footprint_kb"] > 0 for r in pred.buffer_rows)


@pytest.mark.parametrize("preset", sorted(PRESETS))
def test_assoc_knee_matches_real_cache_sweep(preset):
    """Assoc-corrected knee within one power of two of the capacity
    where a real sweep_cache_sizes miss curve flattens."""
    net = yolov3_tiny()
    factory = {
        "rvv": lambda mb: rvv_gem5(vlen_bits=512, l2_mb=mb),
        "sve": lambda mb: sve_gem5(vlen_bits=512, l2_mb=mb),
    }[preset]
    m = factory(1)
    t, _ = tracecache.get_or_capture(net, m, KernelPolicy(), 13)
    knee = reuse_distances(t, m).predicted_knee_bytes(assoc=m.l2.assoc)

    sizes = [4, 32, 64]
    res = sweep_cache_sizes(net, sizes, factory, n_layers=13, use_trace=True)
    sim = {r["l2_mb"]: r["l2_miss_rate"] for r in res.as_rows()}
    flat = next(mb for mb in sizes if abs(sim[mb] - sim[sizes[-1]]) < 1e-9)
    assert flat * MB // 2 <= knee <= 2 * flat * MB, (knee, flat)


def test_drift_findings_fire():
    """check_predict_against_sim: silent in band, loud outside it."""
    m = PRESETS["rvv"]()
    pred = predict_cycles(gemm_summary(M, N, K, m, BlockSizes(64, 512, 128)), m)
    assert check_predict_against_sim(pred, pred.cycles, where="x") == []
    drift = check_predict_against_sim(pred, pred.cycles * 4.0, where="x")
    assert [f.rule for f in drift] == ["predict/cycles-drift"]
    assert all(f.severity == "error" for f in drift)
    floor = check_predict_against_sim(
        pred, pred.cycles, bound_cycles=pred.cycles * 2.0, where="x"
    )
    assert "predict/below-floor" in {f.rule for f in floor}


def test_predicted_stats_roundtrip():
    m = PRESETS["rvv"]()
    pred = predict_cycles(gemm_summary(M, N, K, m, BlockSizes(64, 512, 128)), m)
    st_ = predicted_stats(pred)
    assert st_.cycles == pred.cycles
    assert st_.flops == pred.flops
    assert np.isclose(st_.l2_miss_rate, pred.l2_miss_rate)
    assert np.isclose(st_.l1_miss_rate, pred.l1_miss_rate)


# ----------------------------------------------------------------------
# Pruning acceptance: the 48-point grid
# ----------------------------------------------------------------------

GRID = [
    BlockSizes(m_, n_, k_)
    for m_ in (16, 32, 48, 64)
    for n_ in (256, 512, 1024)
    for k_ in (64, 128, 256, 512)
]


@pytest.mark.parametrize("preset", sorted(PRESETS))
def test_pruned_grid_keeps_exhaustive_top1(preset):
    """On the 48-point grid, prune=9 (< 48/5 = 9.6 simulations) still
    simulates the exhaustive search's true top-1 — the acceptance bar
    for replacing a grid search with the model-guided one."""
    machine = PRESETS[preset]()
    assert len(GRID) == 48
    prune = 9
    assert prune * 5 <= len(GRID) + 4  # simulate at most ~1/5 of the grid

    oracle = min(GRID, key=lambda b: _sim_gemm(machine, b))

    best, ranking = autotune_blocks(machine, M, N, K, candidates=GRID,
                                    prune=prune)
    simulated = [r for r in ranking if r.source == "simulated"]
    pruned = [r for r in ranking if r.source == "pruned-by-model"]
    assert len(simulated) == prune
    assert len(pruned) == len(GRID) - prune
    assert oracle in [r.blocks for r in simulated]
    assert best == oracle
    # Survivors are sim-sorted; pruned entries carry their estimate.
    assert [r.cycles for r in simulated] == sorted(r.cycles for r in simulated)
    assert all(r.predicted_cycles == r.cycles for r in pruned)


# ----------------------------------------------------------------------
# Plumbing: autotune / sweep / selection / CLI
# ----------------------------------------------------------------------

def test_autotune_prune_contract():
    machine = PRESETS["rvv"]()
    cands = [BlockSizes(16, 512, 64), BlockSizes(32, 512, 128),
             BlockSizes(64, 1024, 64), BlockSizes(16, 256, 256)]
    best, ranking = autotune_blocks(machine, 64, 2048, 288,
                                    candidates=cands, prune=2)
    assert sum(r.source == "simulated" for r in ranking) == 2
    assert all(r.predicted_cycles is not None for r in ranking)
    assert best == ranking[0].blocks and ranking[0].source == "simulated"
    with pytest.raises(ValueError):
        autotune_blocks(machine, 64, 2048, 288, candidates=cands, prune=0)
    # prune >= len(candidates): degenerates to the exhaustive ranking.
    _, full = autotune_blocks(machine, 64, 2048, 288, candidates=cands,
                              prune=len(cands))
    assert all(r.source == "simulated" for r in full)


def test_sweep_prune_provenance():
    """Pruned design points are journaled as 'pruned-by-model' and keep
    a usable stats shell (rates, cycles)."""
    net = yolov3_tiny()
    res = sweep_cache_sizes(
        net, [1, 8, 64],
        lambda mb: rvv_gem5(vlen_bits=512, l2_mb=mb),
        n_layers=8, use_trace=True, prune=2,
    )
    sources = [res.source_of(i) for i in range(3)]
    assert sources.count("pruned-by-model") == 1
    assert all(s.cycles > 0 for s in res.stats)
    i = sources.index("pruned-by-model")
    assert 0.0 <= res.stats[i].l2_miss_rate <= 1.0
    with pytest.raises(ValueError):
        sweep_cache_sizes(
            net, [1, 8], lambda mb: rvv_gem5(vlen_bits=512, l2_mb=mb),
            n_layers=8, prune=0,
        )


def test_tuned_choice_reports_blocking():
    spec = ConvSpec(in_channels=16, out_channels=32, in_h=32, in_w=32,
                    ksize=3, stride=1, pad=1)
    choice = tuned_choice(spec, PRESETS["rvv"](), prune=2)
    assert choice.blocks is not None
    assert choice.algorithm in ("winograd", "im2col")
    assert f"{choice.blocks.m}x{choice.blocks.n}x{choice.blocks.k}" in choice.reason


def test_predict_rules_registered():
    from repro.analysis import rule_rows
    from repro.analysis.rules import RULES

    assert RULES["predict/cycles-drift"][0] == "error"
    assert RULES["predict/below-floor"][0] == "error"
    assert {"predict/cycles-drift", "predict/below-floor"} <= {
        r["rule"] for r in rule_rows()
    }


def test_analyze_report_carries_predict_section(tiny_trace):
    from repro.analysis import analyze_trace, canonical_report

    t, m = tiny_trace
    rep = analyze_trace(t, m, oracle=True, net_name="tiny")
    assert rep.predict is not None and rep.predict["cycles"] > 0
    assert rep.oracle is not None and rep.oracle["predict_ratio"] > 0
    assert not rep.findings_for("predict/cycles-drift")
    doc = canonical_report(rep)
    assert doc["predict"]["cycles"] > 0
    assert "static cost model" in rep.to_text()
    # predict=False drops the section (and the oracle gate on it).
    bare = analyze_trace(t, m, oracle=False, net_name="tiny", predict=False)
    assert bare.predict is None


def test_cli_predict_and_autotune(capsys):
    assert main(["predict", "--net", "yolov3-tiny", "--layers", "8",
                 "--oracle", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] and doc["predict"]["cycles"] > 0
    assert doc["oracle"]["predict_ratio"] > 0

    assert main(["autotune", "--machine", "rvv", "-M", "64", "-N", "2048",
                 "-K", "288", "--prune", "2", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["simulated"] == 2
    assert len(doc["ranking"]) > 2
    assert {r["source"] for r in doc["ranking"]} == {
        "simulated", "pruned-by-model"
    }
