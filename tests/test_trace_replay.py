"""Capture-once / replay-many trace engine: bitwise identity & keying.

The contract under test is strict: pricing a recorded kernel event
stream — via :func:`repro.machine.replay.replay`, a shared-pass
``replay_sweep``, or the fused ``capture_sweep`` — must produce
``SimStats`` *bitwise identical* (``float.hex`` equal) to driving the
kernels straight into a :class:`TraceSimulator`.  Equality within an
epsilon is not enough; the replay engines mirror the simulator's
accumulation order exactly, and these tests are the tripwire for any
drift (see the lock-step warning in ``repro/machine/replay.py``).
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import sweep_cache_sizes, sweep_lanes, tracecache
from repro.core.codesign import SweepResult
from repro.machine import a64fx, rvv_gem5, sve_gem5
from repro.machine.hierarchy import MemoryHierarchy
from repro.machine.replay import (
    _GroupCapture,
    _compile_fast,
    _compile_walk,
    _point_pass,
    _point_pass_fast,
    _point_pass_fast2,
    _point_pass_hybrid,
    _point_pass_vec,
    capture_sweep,
    group_mode,
    nonuniform_fields,
    replay,
    replay_sweep,
    supports_axis,
    uniform_group,
)
from repro.machine.simulator import SimStats, TraceSimulator
from repro.machine.trace import RecordedTrace
from repro.nets import ConvLayer, KernelPolicy, MaxPoolLayer, Network
from repro.nets.zoo import yolov3_tiny


def hexs(st: SimStats):
    """Exact fingerprint: every counter as float.hex + kernel cycles."""
    fields = tuple(getattr(st, f).hex() for f in SimStats.FIELDS)
    kc = tuple(sorted((k, v.hex()) for k, v in st.kernel_cycles.items()))
    return fields, kc


def assert_bitwise(a: SimStats, b: SimStats):
    for f in SimStats.FIELDS:
        assert getattr(a, f).hex() == getattr(b, f).hex(), f
    assert hexs(a)[1] == hexs(b)[1]


def direct(net, machine, policy, n_layers):
    sim = TraceSimulator(machine)
    net._emit_trace(sim, policy, n_layers, True)
    return sim.stats


def small_net():
    return Network(
        [ConvLayer(8, 3, 1), MaxPoolLayer(2, 2), ConvLayer(16, 3, 1)],
        input_shape=(4, 32, 32),
        name="small",
    )


L2_SIZES = [1, 4, 64]

CASES = [
    pytest.param(
        lambda mb: rvv_gem5(vlen_bits=1024, lanes=4, l2_mb=mb),
        KernelPolicy(),
        6,
        id="rvv",
    ),
    pytest.param(
        lambda mb: rvv_gem5(vlen_bits=1024, lanes=4, l2_mb=mb),
        KernelPolicy(gemm="6loop"),
        6,
        id="rvv-6loop",
    ),
    pytest.param(
        lambda mb: rvv_gem5(vlen_bits=1024, lanes=4, l2_mb=mb),
        KernelPolicy(winograd="stride1"),
        6,
        id="rvv-winograd",
    ),
    pytest.param(
        lambda mb: sve_gem5(vlen_bits=512, l2_mb=mb), KernelPolicy(), 6, id="sve"
    ),
    pytest.param(
        lambda mb: a64fx().with_(
            l2=a64fx().l2.__class__(
                size_bytes=mb << 20,
                assoc=a64fx().l2.assoc,
                line_bytes=a64fx().l2.line_bytes,
                latency=a64fx().l2.latency,
            )
        ),
        KernelPolicy(),
        6,
        id="a64fx",
    ),
]


class TestBitwiseIdentity:
    @pytest.mark.parametrize("mk,policy,n", CASES)
    def test_replay_and_sweeps_match_direct(self, mk, policy, n):
        net = yolov3_tiny()
        machines = [mk(mb) for mb in L2_SIZES]
        ds = [direct(net, m, policy, n) for m in machines]

        trace = net.record_trace(machines[0], policy, n_layers=n)
        assert_bitwise(ds[0], replay(trace, machines[0]))

        replayed = replay_sweep(trace, machines)
        assert replayed is not None
        for d, r in zip(ds, replayed):
            assert_bitwise(d, r)

        fused = capture_sweep(
            lambda sim: net._emit_trace(sim, policy, n, True), machines
        )
        assert fused is not None
        for d, c in zip(ds, fused):
            assert_bitwise(d, c)

    def test_mixed_dram_and_tiny_l2_group(self):
        """Uniform groups may vary DRAM parameters, not just L2 size."""
        net = yolov3_tiny()
        base = rvv_gem5(vlen_bits=1024, lanes=4, l2_mb=1)
        tiny = base.with_(
            l2=base.l2.__class__(
                size_bytes=64 * 1024,
                assoc=base.l2.assoc,
                line_bytes=base.l2.line_bytes,
                latency=base.l2.latency,
            )
        )
        group = [
            tiny,
            base.with_(dram_latency=300),
            rvv_gem5(vlen_bits=1024, lanes=4, l2_mb=64).with_(dram_bytes_per_cycle=8),
        ]
        assert uniform_group(group)
        ds = [direct(net, m, KernelPolicy(), 6) for m in group]
        trace = net.record_trace(group[0], KernelPolicy(), n_layers=6)
        for d, r in zip(ds, replay_sweep(trace, group)):
            assert_bitwise(d, r)

    def test_zero_layer_trace(self):
        net = yolov3_tiny()
        m = rvv_gem5(vlen_bits=1024, lanes=4, l2_mb=1)
        trace = net.record_trace(m, KernelPolicy(), n_layers=0)
        assert_bitwise(direct(net, m, KernelPolicy(), 0), replay(trace, m))

    def test_lane_group_replays_deferred(self):
        """Lanes change pricing arithmetic, not the walk: the engines
        defer the VPU-dependent terms and replay bitwise."""
        net = yolov3_tiny()
        group = [
            rvv_gem5(vlen_bits=1024, lanes=l, l2_mb=1) for l in (1, 2, 4, 8)
        ]
        assert not uniform_group(group)  # not an L2/DRAM-only group...
        assert group_mode(group) == "vpu"  # ...but a deferred-pricing one
        ds = [direct(net, m, KernelPolicy(), 2) for m in group]
        trace = net.record_trace(group[0], KernelPolicy(), n_layers=2)
        for d, r in zip(ds, replay_sweep(trace, group)):
            assert_bitwise(d, r)
        cs = capture_sweep(
            lambda sim: net._emit_trace(sim, KernelPolicy(), 2, True), group
        )
        for d, r in zip(ds, cs):
            assert_bitwise(d, r)

    def test_vl_group_declined(self):
        """VL changes the event stream itself -> the group engines
        decline; each VL point records (and replays) its own trace."""
        group = [rvv_gem5(vlen_bits=v, lanes=4, l2_mb=1) for v in (512, 1024)]
        assert group_mode(group) is None
        assert not supports_axis("l1_size")
        assert supports_axis("lanes") and supports_axis("vlen_bits")
        assert nonuniform_fields(group) == ["vlen_bits"]

    def test_port_level_group_declined(self):
        """The VPU memory-port level shapes the recorded walk: a group
        varying in it must fall back to per-point simulation."""
        m0 = rvv_gem5(vlen_bits=1024, lanes=4, l2_mb=1)
        m1 = m0.with_(vpu=replace(m0.vpu, mem_port="L1"))
        assert group_mode([m0, m1]) is None

    def test_incompatible_machine_raises(self):
        net = yolov3_tiny()
        trace = net.record_trace(
            rvv_gem5(vlen_bits=1024, lanes=4), KernelPolicy(), n_layers=2
        )
        with pytest.raises(ValueError):
            replay(trace, rvv_gem5(vlen_bits=2048, lanes=4))

    def test_save_load_roundtrip(self, tmp_path):
        net = yolov3_tiny()
        m = rvv_gem5(vlen_bits=1024, lanes=4, l2_mb=1)
        trace = net.record_trace(m, KernelPolicy(), n_layers=2, key="k123")
        path = str(tmp_path / "t.npz")
        trace.save(path)
        loaded = RecordedTrace.load(path)
        assert loaded.key == "k123"
        assert loaded.n_events == trace.n_events
        assert_bitwise(replay(trace, m), replay(loaded, m))


class TestPointPassEngines:
    """The specialised point passes must agree with the full walk.

    ``_run_points`` routes each design point to the cheapest engine its
    cache pressure allows (full walk / hybrid hot-set / conflict-free
    fast, pairwise-fused).  Here each engine is run explicitly against
    the full walk on the same shared program.
    """

    @pytest.fixture(scope="class")
    def captured(self):
        net = yolov3_tiny()
        m0 = rvv_gem5(vlen_bits=1024, lanes=4, l2_mb=1)
        cap = _GroupCapture(m0)
        net._emit_trace(cap, KernelPolicy(), 6, True)
        return cap.finish()

    def test_hybrid_matches_full(self, captured):
        prog, inv, gc = captured
        assert not gc["has_fills"] and not gc["pf2_cfg"]
        m = rvv_gem5(vlen_bits=1024, lanes=4, l2_mb=1)
        num_sets = m.l2.size_bytes // m.l2.line_bytes // m.l2.assoc
        lines = np.fromiter(gc["distinct"], dtype=np.int64)
        sets = lines % num_sets
        hot_mask = np.bincount(sets)[sets] > m.l2.assoc
        # The 1 MB point of this net sits in hybrid territory: a few
        # overcommitted sets, everything else conflict-free.
        assert 0 < hot_mask.sum() < len(lines)
        hot = set(lines[hot_mask].tolist())
        assert_bitwise(
            _point_pass(prog, inv, m, gc),
            _point_pass_hybrid(prog, inv, m, gc, hot),
        )

    def test_fast_and_fast2_match_full(self, captured):
        prog, inv, gc = captured
        ma = rvv_gem5(vlen_bits=1024, lanes=4, l2_mb=64)
        mb = rvv_gem5(vlen_bits=1024, lanes=4, l2_mb=256)
        ref_a = _point_pass(prog, inv, ma, gc)
        ref_b = _point_pass(prog, inv, mb, gc)
        assert_bitwise(ref_a, _point_pass_fast(prog, inv, ma, gc))
        pair = _point_pass_fast2(prog, inv, ma, mb, gc)
        assert_bitwise(ref_a, pair[0])
        assert_bitwise(ref_b, pair[1])

    def test_budget_compile_matches_fast_when_trimming(self, captured):
        """A finite-budget compile resolves trimming range walks into
        the same classes the loop pass prices event by event."""
        prog, inv, gc = captured
        m = rvv_gem5(vlen_bits=1024, lanes=4, l2_mb=2)
        assert gc["max_range_total"] > m.l2.size_bytes  # ranges trim here
        cols = _compile_fast(prog, gc, MemoryHierarchy.pricing_view(m))
        assert_bitwise(
            _point_pass_fast(prog, inv, m, gc),
            _point_pass_vec(cols, inv, m, gc),
        )

    def test_walk_compile_matches_full_on_lane_group(self):
        """A conflicted lane group (uniform 1 MB L2, varying lanes)
        resolves its cache walk once and vec-prices every point."""
        net = yolov3_tiny()
        machines = [
            rvv_gem5(vlen_bits=1024, lanes=l, l2_mb=1) for l in (2, 4, 8)
        ]
        cap = _GroupCapture(machines[0], defer_vpu=True)
        net._emit_trace(cap, KernelPolicy(), 6, True)
        prog, inv, gc = cap.finish()
        cols = _compile_walk(prog, gc, machines[0])
        for m in machines:
            assert_bitwise(
                _point_pass(prog, inv, m, gc),
                _point_pass_vec(cols, inv, m, gc),
            )

    def test_run_points_selects_all_engines(self, monkeypatch):
        """An L2 sweep of this net routes through every engine."""
        from repro.machine import replay as R

        calls = []
        for name in ("_point_pass", "_point_pass_hybrid", "_point_pass_vec",
                     "_point_pass_fast2", "_compile_fast"):
            orig = getattr(R, name)
            monkeypatch.setattr(
                R, name,
                (lambda orig, name: lambda *a: (calls.append(name), orig(*a))[1])(
                    orig, name
                ),
            )
        net = yolov3_tiny()
        sizes = [1, 2, 4, 64]  # hybrid; fast2 pair; vec (never-trimming)
        machines = [rvv_gem5(vlen_bits=1024, lanes=4, l2_mb=mb) for mb in sizes]
        fused = capture_sweep(
            lambda sim: net._emit_trace(sim, KernelPolicy(), 6, True), machines
        )
        for m, f in zip(machines, fused):
            assert_bitwise(direct(net, m, KernelPolicy(), 6), f)
        assert "_point_pass_hybrid" in calls
        # 2 MB and 4 MB trim alone (singleton budgets): the paired loop
        # pass beats a compile nothing else reuses.
        assert "_point_pass_fast2" in calls
        # 64 MB never trims: compiled once, priced by column arithmetic.
        assert calls.count("_point_pass_vec") == 1
        assert calls.count("_compile_fast") == 1


class TestTraceKey:
    def key(self, net=None, machine=None, policy=None, n_layers=6):
        return tracecache.trace_key(
            net or yolov3_tiny(),
            machine or rvv_gem5(vlen_bits=1024, lanes=4, l2_mb=1),
            policy or KernelPolicy(),
            n_layers,
        )

    def test_pricing_axes_share_a_key(self):
        base = self.key()
        assert base == self.key(machine=rvv_gem5(vlen_bits=1024, lanes=4, l2_mb=256))
        assert base == self.key(machine=rvv_gem5(vlen_bits=1024, lanes=2, l2_mb=1))
        assert base == self.key(
            machine=rvv_gem5(vlen_bits=1024, lanes=4, l2_mb=1).with_(dram_latency=999)
        )

    def test_stream_axes_change_the_key(self):
        base = self.key()
        assert base != self.key(machine=rvv_gem5(vlen_bits=2048, lanes=4, l2_mb=1))
        assert base != self.key(machine=sve_gem5(vlen_bits=1024, l2_mb=1))
        assert base != self.key(policy=KernelPolicy(gemm="6loop"))
        assert base != self.key(n_layers=4)
        assert base != self.key(net=small_net())

    def test_registry_and_spill(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        tracecache.clear_registry()
        net = small_net()
        m = rvv_gem5(vlen_bits=512, lanes=4, l2_mb=1)
        trace, cached = tracecache.get_or_capture(net, m, KernelPolicy(), None, spill=True)
        assert not cached
        _, cached = tracecache.get_or_capture(net, m, KernelPolicy(), None, spill=True)
        assert cached
        # A fresh registry (= another worker process) loads the spill.
        tracecache.clear_registry()
        key = tracecache.trace_key(net, m, KernelPolicy(), None)
        loaded = tracecache.get(key, spill=True)
        assert loaded is not None
        assert_bitwise(replay(trace, m), replay(loaded, m))
        tracecache.clear_registry()


class TestSweepIntegration:
    def test_sources_and_identity(self):
        net = small_net()

        def factory(mb):
            return rvv_gem5(vlen_bits=512, lanes=4, l2_mb=mb)

        on = sweep_cache_sizes(net, [1, 4, 16], factory)
        off = sweep_cache_sizes(net, [1, 4, 16], factory, use_trace=False)
        assert on.sources == ["captured", "replayed", "replayed"]
        assert off.sources == ["direct", "direct", "direct"]
        for a, b in zip(on.stats, off.stats):
            assert_bitwise(a, b)
        assert [r["source"] for r in on.as_rows()] == on.sources

    def test_lane_sweep_replays(self):
        net = small_net()

        def factory(lanes):
            return rvv_gem5(vlen_bits=512, lanes=lanes, l2_mb=1)

        on = sweep_lanes(net, [2, 4, 8], factory)
        off = sweep_lanes(net, [2, 4, 8], factory, use_trace=False)
        assert on.sources == ["captured", "replayed", "replayed"]
        assert off.sources == ["direct", "direct", "direct"]
        for a, b in zip(on.stats, off.stats):
            assert_bitwise(a, b)

    def test_vl_sweep_replays_from_seeded_registry(self):
        """Each VL point is a singleton trace group: the first sweep
        captures (and prices by replay); a second sweep along the same
        axis replays every point without re-running kernels."""
        from repro.core import sweep_vector_lengths

        tracecache.clear_registry()
        net = small_net()
        vlens = [512, 1024, 2048]

        def factory(v):
            return rvv_gem5(vlen_bits=v, lanes=4, l2_mb=1)

        first = sweep_vector_lengths(net, vlens, factory)
        second = sweep_vector_lengths(net, vlens, factory)
        off = sweep_vector_lengths(net, vlens, factory, use_trace=False)
        assert first.sources == ["captured"] * 3
        assert second.sources == ["replayed"] * 3
        assert off.sources == ["direct"] * 3
        for a, b, c in zip(first.stats, second.stats, off.stats):
            assert_bitwise(a, c)
            assert_bitwise(b, c)
        tracecache.clear_registry()

    def test_unreplayable_axis_raises_when_trace_forced(self):
        net = small_net()
        m0 = rvv_gem5(vlen_bits=512, lanes=4, l2_mb=1)
        group = [m0, m0.with_(vpu=replace(m0.vpu, mem_port="L1"))]
        from repro.core.codesign import sweep

        with pytest.raises(ValueError, match="mem_port|vpu"):
            sweep(net, "port", ["L2", "L1"], lambda i: group[
                {"L2": 0, "L1": 1}[i]
            ], use_trace=True)
        # Default (auto) mode degrades to per-point simulation instead.
        res = sweep(
            net, "port", ["L2", "L1"],
            lambda i: group[{"L2": 0, "L1": 1}[i]],
        )
        assert res.sources == ["direct", "direct"]

    def test_simcache_hits_win_over_replay(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SIMCACHE_DIR", str(tmp_path / "sc"))
        net = small_net()

        def factory(mb):
            return rvv_gem5(vlen_bits=512, lanes=4, l2_mb=mb)

        first = sweep_cache_sizes(net, [1, 4], factory, use_cache=True)
        second = sweep_cache_sizes(net, [1, 4], factory, use_cache=True)
        assert first.sources == ["captured", "replayed"]
        assert second.sources == ["cached", "cached"]
        for a, b in zip(first.stats, second.stats):
            assert_bitwise(a, b)

    def test_zero_cycle_speedups_guarded(self):
        res = SweepResult(axis_name="x", axis=[1, 2], stats=[SimStats(), SimStats()])
        assert res.speedups() == [1.0, 1.0]
        live = SweepResult(
            axis_name="x", axis=[1, 2], stats=[SimStats(cycles=10.0), SimStats()]
        )
        assert live.speedups() == [1.0, float("inf")]
        assert SweepResult(axis_name="x").speedups() == []
