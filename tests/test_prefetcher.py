"""Tests for the stream prefetcher — the mechanism behind the paper's
6-loop-GEMM-wins-on-A64FX result (Section VI-C)."""

from repro.machine import NullPrefetcher, SetAssocCache, StreamPrefetcher

import pytest


def cache():
    return SetAssocCache(64 << 10, 4, 64)


class TestNullPrefetcher:
    def test_never_prefetches(self):
        pf = NullPrefetcher()
        c = cache()
        for la in range(100):
            assert pf.observe(c, la) == 0
        assert c.resident_lines() == 0


class TestStreamPrefetcher:
    def test_sequential_stream_fires_after_trigger(self):
        pf = StreamPrefetcher(num_streams=4, degree=4, trigger=2)
        c = cache()
        assert pf.observe(c, 100) == 0  # allocate stream
        filled = pf.observe(c, 101)  # confirms -> prefetch 102..105
        assert filled == 4
        for la in (102, 103, 104, 105):
            assert c.contains(la)

    def test_sequential_stream_covers_future_accesses(self):
        pf = StreamPrefetcher(num_streams=4, degree=4, trigger=2)
        c = cache()
        misses = 0
        for la in range(50):
            if not c.contains(la):
                misses += 1
            c.access(la)
            pf.observe(c, la)
        # After the stream locks on, almost everything is prefetched.
        assert misses <= 4

    def test_random_pattern_never_fires(self):
        pf = StreamPrefetcher(num_streams=4, degree=4, trigger=2)
        c = cache()
        # Far-apart lines: no stream ever confirms.
        total = sum(pf.observe(c, la * 1000) for la in range(32))
        assert total == 0

    def test_stream_table_thrashing(self):
        """More concurrent streams than table entries -> no prefetches.

        This is the 3-loop GEMM pattern: the k-loop round-robins over K
        distinct B-matrix rows, each its own stream.
        """
        pf = StreamPrefetcher(num_streams=8, degree=4, trigger=2)
        c = cache()
        n_streams, steps = 32, 12
        total = 0
        for step in range(steps):
            for s in range(n_streams):
                total += pf.observe(c, s * 10_000 + step)
        assert total == 0  # every stream evicted before it could confirm

    def test_few_streams_all_tracked(self):
        """The packed 6-loop pattern: a handful of sequential buffers."""
        pf = StreamPrefetcher(num_streams=8, degree=4, trigger=2)
        c = cache()
        total = 0
        for step in range(16):
            for s in range(4):
                total += pf.observe(c, s * 10_000 + step)
        assert total > 0

    def test_access_within_window_keeps_stream(self):
        pf = StreamPrefetcher(num_streams=4, degree=4, trigger=1)
        c = cache()
        pf.observe(c, 10)
        pf.observe(c, 11)
        # Skipping ahead inside the prefetch window continues the stream.
        assert pf.observe(c, 13) > 0

    def test_issued_counter(self):
        pf = StreamPrefetcher(num_streams=4, degree=2, trigger=1)
        c = cache()
        pf.observe(c, 0)
        pf.observe(c, 1)
        assert pf.issued > 0

    def test_reset(self):
        pf = StreamPrefetcher()
        c = cache()
        pf.observe(c, 0)
        pf.observe(c, 1)
        pf.reset()
        assert pf.issued == 0
        assert pf.observe(c, 2) == 0  # must re-confirm from scratch

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StreamPrefetcher(num_streams=0)
        with pytest.raises(ValueError):
            StreamPrefetcher(degree=0)
