"""Property tests for the v4 compressed trace container (``.rtz``).

The codec (repro.core.tracecache) must be lossless for *any* int64
column content — delta + zigzag + varint round-trips exactly, including
two's-complement wraparound at the extremes — and every body-byte
corruption must be detected (block checksum or content digest), never
decoded into a silently different trace.
"""

import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import tracecache as tc
from repro.machine import rvv_gem5
from repro.machine.replay import replay
from repro.machine.trace import TRACE_FORMAT_VERSION, RecordedTrace
from repro.nets import ConvLayer, KernelPolicy, MaxPoolLayer, Network

int64s = st.integers(min_value=-(2**63), max_value=2**63 - 1)
uint64s = st.integers(min_value=0, max_value=2**64 - 1)


def small_net():
    return Network(
        [ConvLayer(8, 3, 1), MaxPoolLayer(2, 2), ConvLayer(16, 3, 1)],
        input_shape=(4, 32, 32),
        name="small",
    )


@pytest.fixture(scope="module")
def trace():
    return small_net().record_trace(
        rvv_gem5(vlen_bits=512, lanes=4, l2_mb=1), KernelPolicy(), key="codec"
    )


class TestVarintDelta:
    @given(st.lists(uint64s, max_size=300))
    @settings(max_examples=120, deadline=None)
    def test_varint_roundtrip_any_uint64(self, vals):
        arr = np.array(vals, np.uint64)
        out = tc._varint_decode(tc._varint_encode(arr), len(arr))
        assert np.array_equal(out, arr)

    @given(st.lists(int64s, max_size=300))
    @settings(max_examples=120, deadline=None)
    def test_delta_roundtrip_any_int64(self, vals):
        """Exact even across two's-complement wraparound: diff and
        cumsum wrap identically."""
        arr = np.array(vals, np.int64)
        out = tc._delta_decode(tc._delta_encode(arr), len(arr))
        assert np.array_equal(out, arr)

    @given(st.lists(int64s, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_zigzag_roundtrip_and_small_magnitudes_stay_small(self, vals):
        arr = np.array(vals, np.int64)
        zz = tc._zigzag(arr)
        assert np.array_equal(tc._unzigzag(zz), arr)
        # (not np.abs: |INT64_MIN| overflows right back to INT64_MIN)
        small = (arr > -(2**20)) & (arr < 2**20)
        assert np.all(zz[small] < 2**21)

    def test_varint_rejects_truncation_and_wrong_count(self):
        arr = np.arange(1000, dtype=np.uint64) * 257
        buf = tc._varint_encode(arr)
        with pytest.raises(ValueError):
            tc._varint_decode(buf[:-1], len(arr))
        with pytest.raises(ValueError):
            tc._varint_decode(buf, len(arr) - 1)
        with pytest.raises(ValueError):
            tc._varint_decode(buf + b"\x00", len(arr))


class TestContainerRoundtrip:
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(0, 400))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_random_columns(self, seed, n):
        rng = np.random.default_rng(seed)
        synthetic = RecordedTrace(
            "prop",
            "rvv",
            512,
            64,
            ["other", "gemm", "im2col"],
            rng.integers(0, 11, n).astype(np.uint8),
            rng.random(n),
            rng.integers(0, 3, n).astype(np.uint32),
            rng.integers(-(2**52), 2**52, n).astype(np.int64),
            rng.integers(0, 2**30, n).astype(np.int64),
            rng.integers(-64, 64, n).astype(np.int64),
            rng.integers(0, 2, n).astype(np.int64),
            rng.random(n) * 4.0,
            meta={"seed": int(seed)},
            buffers=[("A", 4096, 1024), ("B", 8192, 2048)],
        )
        back = tc.decode_trace(tc.encode_trace(synthetic))
        for name, _ in RecordedTrace._COLUMNS:
            a, b = getattr(synthetic, name), getattr(back, name)
            assert a.dtype == b.dtype and np.array_equal(a, b), name
        assert back.labels == synthetic.labels
        assert back.buffers == synthetic.buffers
        assert back.meta == synthetic.meta
        assert back.key == "prop"

    def test_real_trace_roundtrips_and_replays_bitwise(self, trace, tmp_path):
        path = str(tmp_path / "t.rtz")
        tc.save_compressed(trace, path)
        loaded = tc.load_compressed(path)
        m = rvv_gem5(vlen_bits=512, lanes=4, l2_mb=1)
        a, b = replay(trace, m), replay(loaded, m)
        for f in type(a).FIELDS:
            assert getattr(a, f).hex() == getattr(b, f).hex(), f
        assert a.kernel_cycles == b.kernel_cycles

    def test_compression_is_substantial(self, trace):
        blob = tc.encode_trace(trace)
        assert len(blob) < trace.nbytes() / 10

    def test_header_is_cheap_and_faithful(self, trace, tmp_path):
        path = str(tmp_path / "t.rtz")
        tc.save_compressed(trace, path)
        header = tc.read_header(path)
        assert header["format"] == TRACE_FORMAT_VERSION
        assert header["key"] == "codec"
        assert header["n_events"] == trace.n_events
        assert header["sha256"]

    def test_stale_format_rejected(self, trace):
        blob = bytearray(tc.encode_trace(trace))
        blob[4] = TRACE_FORMAT_VERSION - 1
        with pytest.raises(ValueError, match="stale"):
            tc.decode_trace(bytes(blob))

    def test_bad_magic_rejected(self, trace):
        blob = b"NOPE" + tc.encode_trace(trace)[4:]
        with pytest.raises(ValueError, match="magic"):
            tc.decode_trace(blob)

    @given(frac=st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_any_body_byte_flip_is_detected(self, trace, frac):
        """Every byte after the header is covered by a block checksum
        or the sha256 content digest: no single-bit body corruption can
        decode into a (different) trace."""
        blob = bytearray(tc.encode_trace(trace))
        body = 9 + int.from_bytes(blob[5:9], "little")
        pos = body + min(int(frac * (len(blob) - body)), len(blob) - body - 1)
        blob[pos] ^= 0x01
        with pytest.raises((ValueError, zlib.error, Exception)):
            tc.decode_trace(bytes(blob))


class TestSharedMemoryTier:
    def test_publish_attach_release(self, trace):
        key = "11fe" * 16
        assert tc.publish_shm(key, trace)
        assert tc.publish_shm(key, trace)  # idempotent
        tc.clear_registry()
        tc.reset_load_counts()
        got = tc.get(key, spill=False)
        assert got is not None and got.n_events == trace.n_events
        assert tc.load_counts()["shm"] == 1
        # A registry hit now; no second shm decode.
        assert tc.get(key, spill=False) is not None
        assert tc.load_counts()["shm"] == 1
        tc.release_shm(key)
        tc.clear_registry()
        assert tc.get(key, spill=False) is None
        tc.release_shm()  # idempotent, safe with nothing owned

    def test_spill_loads_are_counted_and_logged(
        self, trace, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        log = tmp_path / "loads.log"
        monkeypatch.setenv("REPRO_TRACE_LOAD_LOG", str(log))
        key = "ab" * 32
        tc.put(key, trace, spill=True)
        tc.clear_registry()
        tc.reset_load_counts()
        assert tc.get(key, spill=True) is not None
        counts = tc.load_counts()
        assert counts["shm"] == 0 and counts["spill"] == 1
        pid, source, logged_key = log.read_text().split()
        assert source == "spill" and logged_key == key
        tc.clear_registry()
