"""Tests for the model zoo against the paper's network descriptions."""

import numpy as np
import pytest

from repro.nets import (
    KernelPolicy,
    vgg16,
    vgg16_cfg,
    yolov3,
    yolov3_cfg,
    yolov3_tiny,
    yolov3_tiny_cfg,
)
from repro.workloads import TABLE4_LAYERS, discrete_conv_specs, first_n_conv_specs


class TestYolov3:
    """Section II-B: 107 layers, 75 convolutional."""

    @pytest.fixture(scope="class")
    def net(self):
        return yolov3()

    def test_layer_counts(self, net):
        assert len(net.layers) == 107
        assert len(net.conv_layers()) == 75

    def test_five_layer_types(self, net):
        kinds = {l.kind for l in net.layers}
        assert kinds == {"conv", "shortcut", "route", "upsample", "yolo"}

    def test_3x3_layer_split(self, net):
        """Section VII-A: "38 out of the 75 use 3x3 kernel-sized filters".

        The paper quotes a 32/6 stride split; the standard YOLOv3 graph
        actually has 33 stride-1 and 5 stride-2 3x3 convolutions (five
        downsampling stages take 608 -> 19), which we take as ground
        truth (see EXPERIMENTS.md).
        """
        threes = [l for _, l in net.conv_layers() if l.size == 3]
        assert len(threes) == 38
        assert sum(1 for l in threes if l.stride == 1) == 33
        assert sum(1 for l in threes if l.stride == 2) == 5
        ones = [l for _, l in net.conv_layers() if l.size == 1]
        assert len(ones) == 75 - 38

    def test_first_20_layers_have_15_convs(self, net):
        """Section VI-B: first 20 layers, 15 convolutional."""
        assert len(first_n_conv_specs(net, 20)) == 15

    def test_table4_shapes_present(self, net):
        dims = {(s.M, s.N, s.K) for s in discrete_conv_specs(net)}
        for row in TABLE4_LAYERS:
            assert (row.M, row.N, row.K) in dims, row

    def test_shapes_propagate_to_detection_grids(self, net):
        shapes = net.shapes()
        # Three YOLO heads at 19x19, 38x38, 76x76 for 608 input.
        yolo_shapes = [
            shapes[i] for i, l in enumerate(net.layers) if l.kind == "yolo"
        ]
        assert yolo_shapes == [(255, 19, 19), (255, 38, 38), (255, 76, 76)]

    def test_cfg_text_roundtrip(self):
        text = yolov3_cfg()
        assert text.count("[convolutional]") == 75
        assert text.count("[shortcut]") == 23
        assert text.count("[yolo]") == 3

    def test_functional_forward_tiny_input(self):
        # Functional correctness smoke at reduced resolution (same graph).
        net = yolov3(width=64, height=64)
        x = np.random.default_rng(0).standard_normal((3, 64, 64)).astype(np.float32)
        out = net.forward(x)
        assert out.shape[0] == 255
        assert np.isfinite(out).all()


class TestYolov3Tiny:
    def test_conv_count(self):
        """Section II-B: 13 convolutional layers."""
        net = yolov3_tiny()
        assert len(net.conv_layers()) == 13
        assert "[convolutional]" in yolov3_tiny_cfg()

    def test_forward(self):
        net = yolov3_tiny(width=64, height=64)
        x = np.zeros((3, 64, 64), dtype=np.float32)
        out = net.forward(x)
        assert np.isfinite(out).all()


class TestVgg16:
    @pytest.fixture(scope="class")
    def net(self):
        return vgg16()

    def test_layer_counts(self, net):
        """Section II-B: 25 layers, 13 conv, 3 fully-connected."""
        assert len(net.layers) == 25
        assert len(net.conv_layers()) == 13
        assert sum(1 for l in net.layers if l.kind == "connected") == 3

    def test_all_convs_are_3x3_stride1(self, net):
        """Section VII-A: all VGG16 conv layers use 3x3 stride-1 filters
        (the all-Winograd workload)."""
        for _, l in net.conv_layers():
            assert l.size == 3 and l.stride == 1

    def test_classifier_shape(self, net):
        assert net.shapes()[-1] == (1000, 1, 1)

    def test_vgg_channel_progression(self, net):
        filters = [l.filters for _, l in net.conv_layers()]
        assert filters == [64, 64, 128, 128, 256, 256, 256, 512, 512, 512, 512, 512, 512]

    def test_forward_small(self):
        net = vgg16(width=32, height=32)
        x = np.random.default_rng(1).standard_normal((3, 32, 32)).astype(np.float32)
        out = net.forward(x)
        assert out.shape == (1000, 1, 1)
        assert out.sum() == pytest.approx(1.0, rel=1e-4)

    def test_winograd_everywhere_policy(self, net):
        """With the stride1 rule, every VGG16 conv goes through Winograd."""
        pol = KernelPolicy(winograd="stride1")
        for idx, l in net.conv_layers():
            assert pol.uses_winograd(l.spec(net.in_shape_of(idx)))

    def test_cfg_counts(self):
        text = vgg16_cfg()
        assert text.count("[convolutional]") == 13
        assert text.count("[maxpool]") == 5
        assert text.count("[connected]") == 3
        assert text.count("[dropout]") == 2


class TestResolutionIndependence:
    def test_yolov3_at_416(self):
        net = yolov3(width=416, height=416)
        assert len(net.layers) == 107
        # Heads at 13x13, 26x26, 52x52 for 416 input.
        shapes = net.shapes()
        yolo_shapes = [shapes[i] for i, l in enumerate(net.layers) if l.kind == "yolo"]
        assert yolo_shapes[0] == (255, 13, 13)
