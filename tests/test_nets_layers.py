"""Tests for the network layers: shapes, forwards, policies."""

import numpy as np
import pytest

from repro.isa import SVE
from repro.kernels import ConvSpec, direct_conv2d
from repro.nets import (
    AvgPoolLayer,
    ConnectedLayer,
    ConvLayer,
    DropoutLayer,
    KernelPolicy,
    MaxPoolLayer,
    RouteLayer,
    ShortcutLayer,
    SoftmaxLayer,
    UpsampleLayer,
    YoloLayer,
)


class TestKernelPolicy:
    def test_defaults(self):
        p = KernelPolicy()
        assert p.gemm == "3loop" and p.winograd == "off" and p.unroll == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelPolicy(gemm="7loop")
        with pytest.raises(ValueError):
            KernelPolicy(winograd="always")
        with pytest.raises(ValueError):
            KernelPolicy(functional_gemm="magic")

    def test_winograd_rules(self):
        s1 = ConvSpec(4, 8, 8, 4, 3, 1, 1)
        s2 = ConvSpec(4, 8, 8, 4, 3, 2, 1)
        s3 = ConvSpec(4, 8, 8, 4, 1, 1, 0)
        assert not KernelPolicy(winograd="off").uses_winograd(s1)
        p = KernelPolicy(winograd="stride1")
        assert p.uses_winograd(s1) and not p.uses_winograd(s2)
        q = KernelPolicy(winograd="all3x3")
        assert q.uses_winograd(s1) and q.uses_winograd(s2) and not q.uses_winograd(s3)


class TestConvLayer:
    def test_out_shape_same_padding(self):
        layer = ConvLayer(8, 3, 1)
        assert layer.out_shape((3, 16, 16)) == (8, 16, 16)

    def test_forward_matches_direct(self):
        layer = ConvLayer(5, 3, 1, batch_normalize=False, activation="linear")
        x = np.random.default_rng(0).standard_normal((3, 10, 10)).astype(np.float32)
        out = layer.forward(x, [], KernelPolicy(), None)
        wt = layer.weights_for(x.shape)
        ref = direct_conv2d(x, wt["w"], layer.spec(x.shape)) + wt["bias"][:, None, None]
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-4)

    def test_forward_winograd_equals_gemm_path(self):
        layer = ConvLayer(4, 3, 1, batch_normalize=True, activation="leaky")
        x = np.random.default_rng(1).standard_normal((3, 12, 12)).astype(np.float32)
        a = layer.forward(x, [], KernelPolicy(winograd="off"), None)
        b = layer.forward(x, [], KernelPolicy(winograd="stride1"), None)
        np.testing.assert_allclose(a, b, rtol=2e-3, atol=2e-3)

    def test_forward_kernel_gemms_agree(self):
        layer = ConvLayer(4, 3, 2, batch_normalize=False, activation="relu")
        x = np.random.default_rng(2).standard_normal((2, 9, 9)).astype(np.float32)
        isa = SVE(512)
        ref = layer.forward(x, [], KernelPolicy(functional_gemm="blas"), isa)
        for impl in ("naive", "3loop", "6loop"):
            out = layer.forward(x, [], KernelPolicy(functional_gemm=impl), isa)
            np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-4)

    def test_weights_cached(self):
        layer = ConvLayer(4, 3)
        w1 = layer.weights_for((3, 8, 8))
        w2 = layer.weights_for((3, 8, 8))
        assert w1 is w2


class TestMaxPool:
    def test_standard_2x2(self):
        layer = MaxPoolLayer(2, 2)
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4)
        out = layer.forward(x, [], KernelPolicy(), None)
        np.testing.assert_array_equal(out[0], [[5, 7], [13, 15]])

    def test_tiny_stride1_pool(self):
        # YOLOv3-tiny layer 11: size 2, stride 1 keeps spatial dims.
        layer = MaxPoolLayer(2, 1)
        assert layer.out_shape((512, 13, 13)) == (512, 13, 13)

    def test_forward_shape(self):
        layer = MaxPoolLayer(2, 1)
        x = np.random.default_rng(0).standard_normal((2, 5, 5)).astype(np.float32)
        out = layer.forward(x, [], KernelPolicy(), None)
        assert out.shape == (2, 5, 5)
        assert np.isfinite(out).all()


class TestRouteShortcut:
    def test_route_resolve_relative(self):
        r = RouteLayer([-4])
        assert r.resolve(83) == (79,)

    def test_route_resolve_mixed(self):
        r = RouteLayer([-1, 61])
        assert r.resolve(86) == (85, 61)

    def test_route_concat(self):
        r = RouteLayer([0, 1])
        a = np.ones((2, 3, 3), dtype=np.float32)
        b = np.zeros((1, 3, 3), dtype=np.float32)
        out = r.forward_multi([a, b])
        assert out.shape == (3, 3, 3)

    def test_route_spatial_mismatch(self):
        r = RouteLayer([0, 1])
        with pytest.raises(ValueError):
            r.out_shape_multi([(2, 3, 3), (1, 4, 4)])

    def test_route_empty_rejected(self):
        with pytest.raises(ValueError):
            RouteLayer([])

    def test_shortcut_adds(self):
        s = ShortcutLayer(-3)
        a = np.full((1, 2, 2), 2.0, dtype=np.float32)
        b = np.full((1, 2, 2), 3.0, dtype=np.float32)
        np.testing.assert_array_equal(s.forward_shortcut(a, b), np.full((1, 2, 2), 5.0))


class TestOtherLayers:
    def test_upsample(self):
        u = UpsampleLayer(2)
        x = np.array([[[1.0, 2.0], [3.0, 4.0]]], dtype=np.float32)
        out = u.forward(x, [], KernelPolicy(), None)
        assert out.shape == (1, 4, 4)
        assert out[0, 0, 0] == out[0, 1, 1] == 1.0

    def test_yolo_logistic_channels(self):
        y = YoloLayer(anchors=1, classes=2)  # 7 channels per anchor
        x = np.zeros((7, 2, 2), dtype=np.float32)
        out = y.forward(x, [], KernelPolicy(), None)
        # x, y, obj, classes -> logistic(0) = 0.5; w,h untouched.
        assert (out[[0, 1, 4, 5, 6]] == 0.5).all()
        assert (out[[2, 3]] == 0).all()

    def test_avgpool(self):
        a = AvgPoolLayer()
        x = np.arange(8, dtype=np.float32).reshape(2, 2, 2)
        out = a.forward(x, [], KernelPolicy(), None)
        assert out.shape == (2, 1, 1)
        np.testing.assert_allclose(out.ravel(), [1.5, 5.5])

    def test_softmax_sums_to_one(self):
        s = SoftmaxLayer()
        x = np.random.default_rng(0).standard_normal((10, 1, 1)).astype(np.float32)
        out = s.forward(x, [], KernelPolicy(), None)
        assert out.sum() == pytest.approx(1.0, rel=1e-5)

    def test_dropout_is_identity(self):
        d = DropoutLayer(0.5)
        x = np.ones((3, 2, 2), dtype=np.float32)
        assert d.forward(x, [], KernelPolicy(), None) is x

    def test_connected(self):
        c = ConnectedLayer(10, activation="linear")
        x = np.ones((4, 2, 2), dtype=np.float32)
        out = c.forward(x, [], KernelPolicy(), None)
        assert out.shape == (10, 1, 1)
