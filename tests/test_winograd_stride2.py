"""Tests for the stride-2 Winograd parity decomposition (extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import ConvSpec, direct_conv2d
from repro.kernels.winograd import (
    decomposition_mul_count,
    stride2_decomposed_conv,
    trace_stride2_decomposed,
    trace_winograd_conv,
)
from repro.machine import TraceSimulator, a64fx, sve_gem5


def rand_layer(spec, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((spec.in_channels, spec.in_h, spec.in_w)).astype(np.float32)
    w = rng.standard_normal((spec.out_channels, spec.in_channels, 3, 3)).astype(np.float32)
    return x, w


class TestMulCounts:
    def test_decomposition_beats_fallback(self):
        counts = decomposition_mul_count()
        assert counts["decomposed"] == 169
        assert counts["fallback"] == 256
        assert counts["direct"] == 324
        assert counts["decomposed"] < counts["fallback"] < counts["direct"]


class TestCorrectness:
    @pytest.mark.parametrize(
        "spec",
        [
            ConvSpec(3, 16, 12, 5, 3, 2, 1),
            ConvSpec(2, 9, 9, 3, 3, 2, 1),
            ConvSpec(2, 10, 10, 3, 3, 2, 0),
            ConvSpec(1, 7, 7, 1, 3, 2, 1),
            ConvSpec(4, 32, 32, 8, 3, 2, 1),
        ],
    )
    def test_matches_direct(self, spec):
        x, w = rand_layer(spec)
        y = stride2_decomposed_conv(x, w, spec)
        ref = direct_conv2d(x, w, spec)
        assert y.shape == ref.shape
        np.testing.assert_allclose(y, ref, rtol=1e-5, atol=1e-5)

    def test_rejects_wrong_shape(self):
        spec = ConvSpec(3, 8, 8, 4, 3, 1, 1)  # stride 1
        x, w = rand_layer(ConvSpec(3, 8, 8, 4, 3, 2, 1))
        with pytest.raises(ValueError):
            stride2_decomposed_conv(x, w, spec)

    @given(seed=st.integers(0, 50), h=st.integers(6, 20))
    @settings(max_examples=15, deadline=None)
    def test_property_geometry(self, seed, h):
        spec = ConvSpec(2, h, h + 1, 3, 3, 2, 1)
        x, w = rand_layer(spec, seed)
        np.testing.assert_allclose(
            stride2_decomposed_conv(x, w, spec),
            direct_conv2d(x, w, spec),
            rtol=1e-5,
            atol=1e-5,
        )


class TestTrace:
    SPEC = ConvSpec(128, 76, 76, 256, 3, 2, 1)

    def test_trace_runs(self):
        sim = TraceSimulator(a64fx())
        trace_stride2_decomposed(sim, self.SPEC)
        kc = sim.stats.kernel_cycles
        assert kc.get("wino_tuple_mult", 0) > 0
        assert kc.get("s2_phase_extract", 0) > 0

    def test_trace_rejects_stride1(self):
        with pytest.raises(ValueError):
            trace_stride2_decomposed(
                TraceSimulator(a64fx()), ConvSpec(8, 16, 16, 8, 3, 1, 1)
            )

    @pytest.mark.parametrize(
        "machine,bound",
        [
            # On A64FX the decomposition is a clear win; on the in-order
            # gem5-SVE at 512-bit, vector-op quantization (a 49-position
            # tuple tile still takes ceil(49/16) = 4 ops, like a
            # 64-position one) erodes the multiplication savings to
            # roughly break-even.
            (a64fx(), 0.85),
            (sve_gem5(512), 1.02),
        ],
    )
    def test_beats_subsampling_fallback(self, machine, bound):
        """The extension's point: the decomposition avoids computing the
        stride-1 grid and throwing 3/4 of it away."""

        def cycles(tracer):
            sim = TraceSimulator(machine)
            tracer(sim, self.SPEC)
            return sim.stats.cycles

        dec = cycles(trace_stride2_decomposed)
        fallback = cycles(trace_winograd_conv)
        assert dec < bound * fallback
