"""Tests for the Darknet elementwise kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.kernels import (
    activate_array,
    add_bias,
    copy_cpu,
    fill_cpu,
    normalize_cpu,
    scale_bias,
    trace_stream_kernel,
)
from repro.machine import TraceSimulator, rvv_gem5

f32s = st.floats(-50, 50, width=32)


class TestFillCopy:
    def test_fill(self):
        x = np.empty(10, dtype=np.float32)
        fill_cpu(x, 3.5)
        assert (x == 3.5).all()

    def test_copy(self):
        src = np.arange(6, dtype=np.float32)
        dst = np.zeros(6, dtype=np.float32)
        copy_cpu(src, dst)
        np.testing.assert_array_equal(dst, src)

    def test_copy_shape_mismatch(self):
        with pytest.raises(ValueError):
            copy_cpu(np.zeros(3), np.zeros(4))


class TestBiasScale:
    def test_add_bias_per_channel(self):
        x = np.zeros((2, 3, 3), dtype=np.float32)
        add_bias(x, np.array([1.0, -1.0], dtype=np.float32))
        assert (x[0] == 1).all() and (x[1] == -1).all()

    def test_scale_bias(self):
        x = np.ones((2, 4), dtype=np.float32)
        scale_bias(x, np.array([2.0, 3.0], dtype=np.float32))
        assert (x[0] == 2).all() and (x[1] == 3).all()

    def test_channel_count_checked(self):
        with pytest.raises(ValueError):
            add_bias(np.zeros((2, 2)), np.zeros(3))
        with pytest.raises(ValueError):
            scale_bias(np.zeros((2, 2)), np.zeros(3))

    def test_inplace(self):
        x = np.zeros((1, 2), dtype=np.float32)
        assert add_bias(x, np.ones(1, dtype=np.float32)) is x


class TestNormalize:
    def test_standardizes(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((3, 1000)).astype(np.float32) * 5 + 2
        mean = x.mean(axis=1)
        var = x.var(axis=1)
        normalize_cpu(x, mean, var)
        np.testing.assert_allclose(x.mean(axis=1), 0, atol=1e-4)
        np.testing.assert_allclose(x.var(axis=1), 1, atol=1e-2)

    def test_darknet_epsilon(self):
        x = np.ones((1, 4), dtype=np.float32)
        normalize_cpu(x, np.ones(1, np.float32), np.zeros(1, np.float32))
        assert np.isfinite(x).all()  # eps prevents division by zero


class TestActivations:
    def test_linear_identity(self):
        x = np.array([-1.0, 2.0], dtype=np.float32)
        np.testing.assert_array_equal(activate_array(x.copy(), "linear"), x)

    def test_leaky(self):
        x = np.array([-10.0, 10.0], dtype=np.float32)
        out = activate_array(x.copy(), "leaky")
        np.testing.assert_allclose(out, [-1.0, 10.0])

    def test_relu(self):
        x = np.array([-3.0, 3.0], dtype=np.float32)
        np.testing.assert_array_equal(activate_array(x.copy(), "relu"), [0, 3])

    def test_logistic(self):
        x = np.array([0.0], dtype=np.float32)
        np.testing.assert_allclose(activate_array(x.copy(), "logistic"), [0.5])

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            activate_array(np.zeros(1), "swish")

    @given(x=arrays(np.float32, 32, elements=f32s))
    @settings(max_examples=30)
    def test_leaky_matches_definition(self, x):
        out = activate_array(x.copy(), "leaky")
        ref = np.where(x > 0, x, np.float32(0.1) * x)
        np.testing.assert_allclose(out, ref, rtol=1e-6, atol=1e-6)

    @given(x=arrays(np.float32, 16, elements=f32s))
    @settings(max_examples=30)
    def test_logistic_range(self, x):
        out = activate_array(x.copy(), "logistic")
        assert ((out >= 0) & (out <= 1)).all()


class TestStreamTrace:
    def test_basic_accounting(self):
        sim = TraceSimulator(rvv_gem5())
        buf = sim.alloc("x", 4096)
        trace_stream_kernel(sim, "activate", 1024, buf.base)
        assert sim.stats.kernel_cycles["activate"] > 0
        # One read + one write stream of 1024 f32.
        assert sim.stats.bytes_loaded == pytest.approx(4096, rel=0.01)
        assert sim.stats.bytes_stored == pytest.approx(4096, rel=0.01)

    def test_zero_elements_free(self):
        sim = TraceSimulator(rvv_gem5())
        trace_stream_kernel(sim, "fill", 0, 0)
        assert sim.stats.cycles == 0

    def test_reads_writes_counts(self):
        sim = TraceSimulator(rvv_gem5())
        buf = sim.alloc("x", 1 << 16)
        out = sim.alloc("y", 1 << 16)
        trace_stream_kernel(sim, "maxpool", 4096, buf.base, out.base, reads=4, writes=1)
        assert sim.stats.bytes_loaded == pytest.approx(4 * 4096 * 4, rel=0.01)
