"""Tests for the FFT convolution extension (paper Section II-B(c))."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import ConvSpec, direct_conv2d, fft_conv2d, fft_plan_size, trace_fft_conv
from repro.machine import TraceSimulator, a64fx, rvv_gem5


def rand_layer(spec, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((spec.in_channels, spec.in_h, spec.in_w)).astype(np.float32)
    w = rng.standard_normal(
        (spec.out_channels, spec.in_channels, spec.ksize, spec.ksize)
    ).astype(np.float32)
    return x, w


class TestPlanSize:
    def test_power_of_two(self):
        spec = ConvSpec(3, 14, 11, 5, 3, 1, 1)
        n = fft_plan_size(spec)
        assert n & (n - 1) == 0
        assert n >= spec.in_h + 2 * spec.pad + spec.ksize - 1

    def test_grows_with_kernel(self):
        small = fft_plan_size(ConvSpec(1, 30, 30, 1, 3, 1, 1))
        large = fft_plan_size(ConvSpec(1, 30, 30, 1, 11, 1, 5))
        assert large >= small


class TestCorrectness:
    @pytest.mark.parametrize(
        "spec",
        [
            ConvSpec(3, 14, 11, 5, 3, 1, 1),
            ConvSpec(2, 16, 16, 4, 5, 1, 2),
            ConvSpec(2, 9, 9, 3, 3, 2, 1),
            ConvSpec(4, 8, 8, 2, 1, 1, 0),
            ConvSpec(2, 12, 12, 3, 7, 1, 3),
            ConvSpec(1, 6, 6, 1, 3, 1, 0),  # no padding
        ],
    )
    def test_matches_direct(self, spec):
        x, w = rand_layer(spec)
        y = fft_conv2d(x, w, spec)
        ref = direct_conv2d(x, w, spec)
        assert y.shape == ref.shape
        np.testing.assert_allclose(y, ref, rtol=1e-4, atol=1e-4)

    def test_shape_validation(self):
        spec = ConvSpec(3, 8, 8, 4)
        with pytest.raises(ValueError):
            fft_conv2d(np.zeros((2, 8, 8), np.float32), np.zeros((4, 3, 3, 3), np.float32), spec)
        with pytest.raises(ValueError):
            fft_conv2d(np.zeros((3, 8, 8), np.float32), np.zeros((4, 3, 5, 5), np.float32), spec)

    @given(seed=st.integers(0, 50), k=st.sampled_from([1, 3, 5, 7]))
    @settings(max_examples=15, deadline=None)
    def test_property_kernel_sizes(self, seed, k):
        spec = ConvSpec(2, 12, 10, 3, k, 1, k // 2)
        x, w = rand_layer(spec, seed)
        np.testing.assert_allclose(
            fft_conv2d(x, w, spec), direct_conv2d(x, w, spec), rtol=2e-4, atol=2e-4
        )


class TestTrace:
    def test_runs_and_attributes(self):
        sim = TraceSimulator(a64fx())
        trace_fft_conv(sim, ConvSpec(16, 56, 56, 16, 5, 1, 2))
        kc = sim.stats.kernel_cycles
        for label in ("fft_forward", "fft_pointwise", "fft_inverse", "fft_crop"):
            assert kc.get(label, 0) > 0
        assert "fft_weights" not in kc  # offline by default

    def test_weight_fft_optional(self):
        sim = TraceSimulator(rvv_gem5(512))
        trace_fft_conv(sim, ConvSpec(4, 16, 16, 4, 5, 1, 2), include_weight_fft=True)
        assert sim.stats.kernel_cycles.get("fft_weights", 0) > 0

    def test_cost_insensitive_to_kernel_size(self):
        """FFT's selling point: cost is set by the plan size, not k.

        48 + 2*pad + k - 1 stays within the 64-point plan for both k=3
        (52) and k=7 (60), so their costs are nearly identical."""

        def cycles(k):
            sim = TraceSimulator(a64fx())
            spec = ConvSpec(16, 48, 48, 16, k, 1, k // 2)
            from repro.kernels import fft_plan_size
            assert fft_plan_size(spec) == 64
            trace_fft_conv(sim, spec)
            return sim.stats.cycles

        c3, c7 = cycles(3), cycles(7)
        assert c7 < 1.2 * c3
