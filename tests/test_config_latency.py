"""Tests for machine presets (Table I) and the cache-latency models."""

import pytest

from repro.machine import (
    BASE_L2_LATENCY,
    MB,
    CacheParams,
    CoreParams,
    VPUParams,
    a64fx,
    cacti_like_latency,
    constant_latency,
    latency_for,
    rvv_gem5,
    sve_gem5,
)


class TestLatencyModels:
    def test_constant_matches_paper(self):
        # Paper: Zen2 L2 extrapolated to 1MB via CACTI -> 12 cycles.
        assert constant_latency(1 * MB) == BASE_L2_LATENCY == 12

    def test_constant_ignores_size(self):
        assert constant_latency(256 * MB) == 12

    def test_cacti_base_point(self):
        assert cacti_like_latency(1 * MB) == 12

    def test_cacti_monotone(self):
        sizes = [1, 4, 16, 64, 256]
        lats = [cacti_like_latency(s * MB) for s in sizes]
        assert lats == sorted(lats)
        assert lats[-1] > lats[0]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            constant_latency(0)
        with pytest.raises(ValueError):
            cacti_like_latency(-5)

    def test_dispatch(self):
        assert latency_for(1 * MB, "constant") == 12
        assert latency_for(1 * MB, "cacti") == 12
        with pytest.raises(ValueError):
            latency_for(1 * MB, "magic")


class TestTable1Presets:
    """Each preset must match the corresponding Table I column."""

    def test_rvv_column(self):
        m = rvv_gem5()
        assert m.isa_name == "rvv"
        assert m.core.model == "in-order"
        assert m.core.freq_ghz == 2.0
        assert m.l1.size_bytes == 64 << 10 and m.l1.assoc == 4
        assert m.l2.size_bytes == 1 * MB and m.l2.assoc == 8
        assert m.l1.line_bytes == 64 and m.l2.line_bytes == 64
        assert not m.honors_sw_prefetch
        assert m.vpu.mem_port == "L2"  # VPU attached to the L2
        assert m.vpu.vector_cache_bytes == 2 << 10  # 2KB VectorCache
        assert m.make_isa().mvl_bits == 16384

    def test_rvv_configurable_axes(self):
        m = rvv_gem5(vlen_bits=16384, lanes=4, l2_mb=256)
        assert m.vlen_bits == 16384 and m.vpu.lanes == 4
        assert m.l2.size_bytes == 256 * MB
        # Paper setting: latency stays at the 1MB value across the sweep.
        assert m.l2.latency == 12

    def test_sve_column(self):
        m = sve_gem5()
        assert m.isa_name == "sve"
        assert m.core.model == "in-order"
        assert m.vpu.mem_port == "L1"
        assert m.vpu.vector_cache_bytes == 0
        assert not m.honors_sw_prefetch
        assert m.sw_prefetch_is_noop_instr  # gem5 treats prefetch as no-op
        assert m.make_isa().mvl_bits == 2048

    def test_sve_lanes_proportional_to_vlen(self):
        # Paper Section VI-D: lanes proportional to the vector length.
        l512 = sve_gem5(512).vpu.lanes
        l2048 = sve_gem5(2048).vpu.lanes
        assert l2048 == 4 * l512

    def test_a64fx_column(self):
        m = a64fx()
        assert m.vlen_bits == 512  # fixed on the real chip
        assert m.core.model == "out-of-order"
        assert m.l1.line_bytes == 256 and m.l2.line_bytes == 256
        assert m.l2.size_bytes == 8 * MB and m.l2.assoc == 16
        assert m.honors_sw_prefetch
        assert m.l1_prefetcher is not None and m.l2_prefetcher is not None
        # 2 SIMD units on the die; one sustained by GEMM (L1-port bound).
        assert m.vpu.pipes == 1
        assert m.peak_gflops == 62.5  # Section VI-C(a)

    def test_vlen_f32(self):
        assert rvv_gem5(vlen_bits=512).vlen_f32 == 16
        assert rvv_gem5(vlen_bits=16384).vlen_f32 == 512

    def test_with_override(self):
        m = rvv_gem5().with_(dram_latency=999)
        assert m.dram_latency == 999
        assert rvv_gem5().dram_latency != 999

    def test_describe_mentions_key_facts(self):
        d = a64fx().describe()
        assert "512b" in d and "8MB" in d and "out-of-order" in d


class TestParamValidation:
    def test_bad_mem_port(self):
        with pytest.raises(ValueError):
            VPUParams(mem_port="L3")

    def test_bad_lanes(self):
        with pytest.raises(ValueError):
            VPUParams(lanes=0)

    def test_bad_core_model(self):
        with pytest.raises(ValueError):
            CoreParams(model="quantum")

    def test_bad_ooo_hide(self):
        with pytest.raises(ValueError):
            CoreParams(ooo_hide=1.5)

    def test_bad_cache_geometry(self):
        with pytest.raises(ValueError):
            CacheParams(1000, 3, 64, 10)

    def test_elems_per_cycle(self):
        v = VPUParams(lanes=8, pipes=1)
        assert v.elems_per_cycle(4) == 16
        assert v.elems_per_cycle(8) == 8
        assert VPUParams(lanes=8, pipes=2).elems_per_cycle(4) == 32
