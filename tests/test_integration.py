"""Cross-module integration tests: the full pipeline, end to end."""

import numpy as np
import pytest

from repro.isa import RVV, SVE
from repro.kernels import (
    ConvSpec,
    direct_conv2d,
    fft_conv2d,
    gemm_3loop,
    gemm_6loop,
    im2col,
)
from repro.kernels.winograd import stride2_decomposed_conv, winograd_conv2d
from repro.machine import a64fx, rvv_gem5, sve_gem5
from repro.nets import ConvLayer, KernelPolicy, Network, build_network, yolov3_tiny
from repro.workloads import letterbox, synthetic_image


class TestAllAlgorithmsAgree:
    """Every convolution algorithm in the library computes the same
    function — the strongest cross-module invariant we have."""

    @pytest.mark.parametrize("stride", [1, 2])
    def test_five_way_agreement(self, stride):
        spec = ConvSpec(4, 18, 15, 6, 3, stride, 1)
        rng = np.random.default_rng(42)
        x = rng.standard_normal((4, 18, 15)).astype(np.float32)
        w = rng.standard_normal((6, 4, 3, 3)).astype(np.float32)

        ref = direct_conv2d(x, w, spec)

        # im2col + 3-loop VLA GEMM
        cols = im2col(x, spec)
        c1 = np.zeros((spec.M, spec.N), dtype=np.float32)
        gemm_3loop(RVV(1024), 1.0, w.reshape(spec.M, spec.K), cols, c1)
        np.testing.assert_allclose(c1.reshape(ref.shape), ref, rtol=1e-3, atol=1e-3)

        # im2col + 6-loop BLIS-like GEMM
        c2 = np.zeros((spec.M, spec.N), dtype=np.float32)
        gemm_6loop(SVE(512), 1.0, w.reshape(spec.M, spec.K), cols, c2)
        np.testing.assert_allclose(c2.reshape(ref.shape), ref, rtol=1e-3, atol=1e-3)

        # Winograd (inter-tile VLA input transform)
        y3 = winograd_conv2d(x, w, spec, isa=SVE(2048))
        np.testing.assert_allclose(y3, ref, rtol=1e-3, atol=1e-3)

        # FFT
        y4 = fft_conv2d(x, w, spec)
        np.testing.assert_allclose(y4, ref, rtol=1e-3, atol=1e-3)

        # Stride-2 parity decomposition
        if stride == 2:
            y5 = stride2_decomposed_conv(x, w, spec)
            np.testing.assert_allclose(y5, ref, rtol=1e-3, atol=1e-3)


class TestEndToEndPipeline:
    def test_image_to_detections(self):
        """Full Darknet-style flow: image -> letterbox -> network."""
        img = synthetic_image(height=96, width=128)
        net = yolov3_tiny(width=96, height=96)
        x = letterbox(img, 96, 96)
        out = net.forward(x)
        assert out.shape[0] == 255
        assert np.isfinite(out).all()

    def test_policy_invariance_of_network_output(self):
        """Kernel policy must not change *what* is computed."""
        net = yolov3_tiny(width=64, height=64)
        x = synthetic_image(height=64, width=64)
        base = net.forward(x, KernelPolicy(winograd="off"))
        wino = net.forward(x, KernelPolicy(winograd="all3x3"))
        np.testing.assert_allclose(base, wino, rtol=5e-2, atol=5e-3)

    def test_cfg_network_simulates_everywhere(self):
        cfg = (
            "[net]\nheight=32\nwidth=32\nchannels=3\n"
            "[convolutional]\nbatch_normalize=1\nfilters=8\nsize=3\nstride=1\n"
            "pad=1\nactivation=leaky\n"
            "[maxpool]\nsize=2\nstride=2\n"
            "[convolutional]\nfilters=4\nsize=1\nstride=1\nactivation=linear\n"
        )
        net = build_network(cfg)
        for machine in (rvv_gem5(2048), sve_gem5(1024), a64fx()):
            st = net.simulate(machine, KernelPolicy(gemm="6loop"))
            assert st.cycles > 0
            assert st.flops > 2 * 0.9 * sum(
                l.spec(net.in_shape_of(i)).macs for i, l in net.conv_layers()
            )


class TestSimulationConsistency:
    """Invariants the timing simulation must satisfy across the stack."""

    def _net(self):
        return Network(
            [ConvLayer(16, 3, 1), ConvLayer(32, 3, 2)], input_shape=(8, 40, 40)
        )

    def test_flops_independent_of_machine(self):
        net = self._net()
        f1 = net.simulate(rvv_gem5(512), KernelPolicy(gemm="3loop")).flops
        f2 = net.simulate(rvv_gem5(16384), KernelPolicy(gemm="3loop")).flops
        f3 = net.simulate(a64fx(), KernelPolicy(gemm="3loop")).flops
        assert f1 == pytest.approx(f2, rel=0.01)
        assert f1 == pytest.approx(f3, rel=0.01)

    def test_deterministic(self):
        net = self._net()
        a = net.simulate(sve_gem5(512), KernelPolicy(gemm="6loop"))
        b = net.simulate(sve_gem5(512), KernelPolicy(gemm="6loop"))
        assert a.cycles == b.cycles
        assert a.l2_misses == b.l2_misses

    def test_more_compute_more_cycles(self):
        small = Network([ConvLayer(8, 3, 1)], input_shape=(4, 32, 32))
        large = Network([ConvLayer(32, 3, 1)], input_shape=(4, 32, 32))
        m = rvv_gem5(2048)
        assert (
            large.simulate(m, KernelPolicy()).cycles
            > small.simulate(m, KernelPolicy()).cycles
        )

    def test_gflops_below_machine_peak(self):
        net = self._net()
        for machine in (rvv_gem5(4096), sve_gem5(2048), a64fx()):
            st = net.simulate(machine, KernelPolicy(gemm="6loop"))
            assert st.gflops_per_sec(machine.core.freq_ghz) < machine.peak_gflops * 1.05
