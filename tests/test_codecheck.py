"""Tests for ``repro check-code`` — the source-level invariant analyzer.

Every rule family is proven *live* with a seeded-violation fixture: a
tiny package written to ``tmp_path`` containing exactly one contract
breach, which the analyzer must flag (and whose fixed twin it must
not).  The final gate asserts the repro package itself is clean — the
same zero-findings contract CI enforces.
"""

import json

import pytest

from repro.analysis.codecheck import (
    CHECKERS,
    CheckConfig,
    check_package,
    default_config,
)
from repro.analysis.rules import RULES
from repro.core import knobs


def make_pkg(tmp_path, files, known_knobs=("REPRO_GOOD",)):
    """Write a fixture package ``fx`` and return its CheckConfig.

    Module roles mirror the real config: ``fx.sim:run`` is the sim-core
    root, ``fx.cache`` a barrier, ``fx.store`` durable-io, ``fx.emit``
    an emitter, ``fx.knobs`` the knob registry.
    """
    root = tmp_path / "fx"
    root.mkdir()
    (root / "__init__.py").write_text("")
    for name, src in files.items():
        path = root / (name.replace(".", "/") + ".py")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(src)
    return CheckConfig(
        package_root=root,
        package="fx",
        sim_roots=("fx.sim:run",),
        barrier_modules=("fx.cache",),
        durable_modules=("fx.store",),
        emitter_modules=("fx.emit",),
        knobs_module="fx.knobs",
        known_knobs=frozenset(known_knobs),
    )


def rules_of(findings):
    return {f.rule for f in findings}


class TestDeterminismRules:
    def test_wall_clock_flagged_in_sim_core(self, tmp_path):
        cfg = make_pkg(tmp_path, {
            "sim": "import time\n\n\ndef run():\n    return time.time()\n",
        })
        found = check_package(cfg)
        assert "det/wall-clock" in rules_of(found)
        assert any("sim.py:5" in f.where for f in found)

    def test_wall_clock_ignored_behind_barrier(self, tmp_path):
        # The same time.time() call is fine inside a barrier module the
        # sim-core zone never enters (retry backoff is the cache's job).
        cfg = make_pkg(tmp_path, {
            "sim": "from . import cache\n\n\ndef run():\n"
                   "    return cache.fetch()\n",
            "cache": "import time\n\n\ndef fetch():\n"
                     "    return time.time()\n",
        })
        assert "det/wall-clock" not in rules_of(check_package(cfg))

    def test_wall_clock_ignored_outside_sim_core(self, tmp_path):
        cfg = make_pkg(tmp_path, {
            "sim": "def run():\n    return 1\n",
            "other": "import time\n\n\ndef unrelated():\n"
                     "    return time.time()\n",
        })
        assert "det/wall-clock" not in rules_of(check_package(cfg))

    def test_stdlib_random_flagged(self, tmp_path):
        cfg = make_pkg(tmp_path, {
            "sim": "import random\n\n\ndef run():\n"
                   "    return random.random()\n",
        })
        assert "det/unseeded-random" in rules_of(check_package(cfg))

    def test_numpy_global_random_flagged(self, tmp_path):
        cfg = make_pkg(tmp_path, {
            "sim": "import numpy as np\n\n\ndef run():\n"
                   "    return np.random.rand(3)\n",
        })
        assert "det/unseeded-random" in rules_of(check_package(cfg))

    def test_unseeded_default_rng_flagged_seeded_ok(self, tmp_path):
        cfg = make_pkg(tmp_path, {
            "sim": "from numpy.random import default_rng\n\n\n"
                   "def run(seed):\n"
                   "    bad = default_rng()\n"
                   "    good = default_rng(seed)\n"
                   "    return bad, good\n",
        })
        found = [f for f in check_package(cfg)
                 if f.rule == "det/unseeded-random"]
        assert len(found) == 1
        assert found[0].where.endswith(":5")

    def test_float_narrowing_flagged(self, tmp_path):
        cfg = make_pkg(tmp_path, {
            "sim": "import numpy as np\n\n\ndef run(x):\n"
                   "    a = np.float32(x)\n"
                   "    b = x.astype('float16')\n"
                   "    c = np.zeros(4, dtype=np.float32)\n"
                   "    return a, b, c\n",
        })
        found = [f for f in check_package(cfg) if f.rule == "det/float-cycles"]
        assert len(found) == 3

    def test_float64_not_flagged(self, tmp_path):
        cfg = make_pkg(tmp_path, {
            "sim": "import numpy as np\n\n\ndef run(x):\n"
                   "    return np.zeros(4, dtype=np.float64)\n",
        })
        assert "det/float-cycles" not in rules_of(check_package(cfg))

    def test_unsorted_listdir_flagged_sorted_ok(self, tmp_path):
        cfg = make_pkg(tmp_path, {
            "sim": "def run():\n    return 1\n",
            "util": "import os\n\n\ndef walk(d):\n"
                    "    bad = [n for n in os.listdir(d)]\n"
                    "    good = [n for n in sorted(os.listdir(d))]\n"
                    "    return bad, good\n",
        })
        found = [f for f in check_package(cfg)
                 if f.rule == "det/unsorted-iteration"]
        assert len(found) == 1
        assert found[0].where.endswith(":5")

    def test_unsorted_iterdir_and_set_flagged(self, tmp_path):
        cfg = make_pkg(tmp_path, {
            "sim": "def run():\n    return 1\n",
            "util": "def walk(root, items):\n"
                    "    for p in root.iterdir():\n"
                    "        pass\n"
                    "    for x in set(items):\n"
                    "        pass\n",
        })
        found = [f for f in check_package(cfg)
                 if f.rule == "det/unsorted-iteration"]
        assert len(found) == 2


class TestIoRules:
    BARE = ("def save(path, text):\n"
            "    with open(path, 'w') as fh:\n"
            "        fh.write(text)\n")

    def test_bare_write_flagged_in_durable(self, tmp_path):
        cfg = make_pkg(tmp_path, {"sim": "def run():\n    return 1\n",
                                  "store": self.BARE})
        assert "io/bare-write" in rules_of(check_package(cfg))

    def test_bare_write_ignored_outside_io_modules(self, tmp_path):
        cfg = make_pkg(tmp_path, {"sim": "def run():\n    return 1\n",
                                  "free": self.BARE})
        assert "io/bare-write" not in rules_of(check_package(cfg))

    def test_tmp_callback_write_allowed(self, tmp_path):
        # The write-to-temp inside an atomic_replace callback is the
        # sanctioned pattern — 'tmp' in the path expression marks it.
        cfg = make_pkg(tmp_path, {
            "sim": "def run():\n    return 1\n",
            "store": "def save(path, text):\n"
                     "    def write(tmp):\n"
                     "        with open(tmp, 'w') as fh:\n"
                     "            fh.write(text)\n"
                     "    atomic_replace(path, write)\n"
                     "    h = sha256(text)\n"
                     "    return h\n",
        })
        assert "io/bare-write" not in rules_of(check_package(cfg))

    def test_append_mode_allowed(self, tmp_path):
        cfg = make_pkg(tmp_path, {
            "sim": "def run():\n    return 1\n",
            "store": "def log(path, line):\n"
                     "    with open(path, 'a') as fh:\n"
                     "        fh.write(line)\n",
        })
        assert "io/bare-write" not in rules_of(check_package(cfg))

    def test_digest_gap_flagged(self, tmp_path):
        cfg = make_pkg(tmp_path, {
            "sim": "def run():\n    return 1\n",
            "store": "def save(path, blob):\n"
                     "    atomic_replace(path, blob)\n",
        })
        assert "io/digest-gap" in rules_of(check_package(cfg))

    def test_digest_within_hops_ok(self, tmp_path):
        cfg = make_pkg(tmp_path, {
            "sim": "def run():\n    return 1\n",
            "store": "def _seal(blob):\n"
                     "    return sha256(blob)\n\n\n"
                     "def save(path, blob):\n"
                     "    atomic_replace(path, _seal(blob))\n",
        })
        assert "io/digest-gap" not in rules_of(check_package(cfg))

    def test_json_unsorted_flagged_sorted_ok(self, tmp_path):
        cfg = make_pkg(tmp_path, {
            "sim": "def run():\n    return 1\n",
            "emit": "import json\n\n\ndef emit(doc, fh):\n"
                    "    json.dump(doc, fh)\n"
                    "    json.dump(doc, fh, sort_keys=True)\n",
        })
        found = [f for f in check_package(cfg) if f.rule == "io/json-unsorted"]
        assert len(found) == 1
        assert found[0].where.endswith(":5")


class TestMpRules:
    def test_lambda_bound_method_and_closure_flagged(self, tmp_path):
        cfg = make_pkg(tmp_path, {
            "sim": "def run():\n    return 1\n",
            "pool": "def sweep(pool, obj):\n"
                    "    pool.apply_async(lambda: 1)\n"
                    "    pool.apply_async(obj.work)\n"
                    "    def task():\n"
                    "        return 1\n"
                    "    pool.apply_async(task)\n",
        })
        found = [f for f in check_package(cfg) if f.rule == "mp/fork-unsafe"]
        assert len(found) == 3

    def test_module_level_task_ok(self, tmp_path):
        cfg = make_pkg(tmp_path, {
            "sim": "def run():\n    return 1\n",
            "pool": "def task():\n    return 1\n\n\n"
                    "def sweep(pool):\n"
                    "    pool.apply_async(task)\n",
        })
        assert "mp/fork-unsafe" not in rules_of(check_package(cfg))

    def test_global_mutation_flagged_initializer_exempt(self, tmp_path):
        cfg = make_pkg(tmp_path, {
            "sim": "def run():\n    return 1\n",
            "pool": "G = 0\n\n\n"
                    "def task():\n"
                    "    global G\n"
                    "    G = 1\n\n\n"
                    "def setup():\n"
                    "    global G\n"
                    "    G = 2\n\n\n"
                    "def sweep(Pool):\n"
                    "    pool = Pool(4, initializer=setup)\n"
                    "    pool.apply_async(task)\n",
        })
        found = [f for f in check_package(cfg)
                 if f.rule == "mp/global-mutation"]
        assert len(found) == 1
        assert found[0].detail["function"] == "fx.pool:task"

    def test_shm_leak_flagged_finally_ok(self, tmp_path):
        cfg = make_pkg(tmp_path, {
            "sim": "def run():\n    return 1\n",
            "shm": "def serve(cache):\n"
                   "    cache.publish_shm()\n\n\n"
                   "def serve_ok(cache):\n"
                   "    try:\n"
                   "        cache.publish_shm()\n"
                   "    finally:\n"
                   "        cache.release_shm()\n",
        })
        found = [f for f in check_package(cfg) if f.rule == "mp/shm-leak"]
        assert len(found) == 1
        assert found[0].detail["function"] == "fx.shm:serve"


class TestApiRules:
    def test_env_read_flagged_outside_registry(self, tmp_path):
        cfg = make_pkg(tmp_path, {
            "sim": "def run():\n    return 1\n",
            "util": "import os\n\n\ndef home():\n"
                    "    return os.environ.get('HOME')\n",
        })
        assert "api/env-knob" in rules_of(check_package(cfg))

    def test_env_read_allowed_in_registry_module(self, tmp_path):
        cfg = make_pkg(tmp_path, {
            "sim": "def run():\n    return 1\n",
            "knobs": "import os\n\n\ndef get_raw(name):\n"
                     "    return os.environ.get(name, '')\n",
        })
        assert "api/env-knob" not in rules_of(check_package(cfg))

    def test_undeclared_knob_literal_flagged(self, tmp_path):
        cfg = make_pkg(tmp_path, {
            "sim": "def run():\n    return 1\n",
            "util": "GOOD = 'REPRO_GOOD'\nBAD = 'REPRO_BOGUS'\n",
        })
        found = [f for f in check_package(cfg)
                 if f.rule == "api/knob-undeclared"]
        assert len(found) == 1
        assert found[0].detail["knob"] == "REPRO_BOGUS"


class TestExcRules:
    def test_broad_silent_except_flagged_narrow_ok(self, tmp_path):
        cfg = make_pkg(tmp_path, {
            "sim": "def run():\n    return 1\n",
            "store": "def load(path, read):\n"
                     "    try:\n"
                     "        return read(path)\n"
                     "    except Exception:\n"
                     "        pass\n"
                     "    try:\n"
                     "        return read(path)\n"
                     "    except OSError:\n"
                     "        pass\n",
        })
        found = [f for f in check_package(cfg)
                 if f.rule == "exc/silent-swallow"]
        assert len(found) == 1
        assert found[0].where.endswith(":4")

    def test_bare_except_always_flagged(self, tmp_path):
        cfg = make_pkg(tmp_path, {
            "sim": "def run():\n    return 1\n",
            "store": "def load(path, read):\n"
                     "    try:\n"
                     "        return read(path)\n"
                     "    except:\n"
                     "        return None\n",
        })
        assert "exc/silent-swallow" in rules_of(check_package(cfg))

    def test_suppress_exception_flagged(self, tmp_path):
        cfg = make_pkg(tmp_path, {
            "sim": "def run():\n    return 1\n",
            "store": "from contextlib import suppress\n\n\n"
                     "def load(path, read):\n"
                     "    with suppress(Exception):\n"
                     "        return read(path)\n",
        })
        assert "exc/silent-swallow" in rules_of(check_package(cfg))

    def test_broad_except_with_handling_ok(self, tmp_path):
        # Returning a sentinel communicates the failure; only silent
        # pass/continue bodies are flagged.
        cfg = make_pkg(tmp_path, {
            "sim": "def run():\n    return 1\n",
            "store": "def load(path, read):\n"
                     "    try:\n"
                     "        return read(path)\n"
                     "    except Exception:\n"
                     "        return None\n",
        })
        assert "exc/silent-swallow" not in rules_of(check_package(cfg))


class TestSuppression:
    def test_inline_ignore_drops_named_rule(self, tmp_path):
        cfg = make_pkg(tmp_path, {
            "sim": "def run():\n    return 1\n",
            "store": "def save(path, text):\n"
                     "    fh = open(path, 'w')  "
                     "# reprolint: ignore[io/bare-write]\n"
                     "    fh.write(text)\n",
        })
        assert "io/bare-write" not in rules_of(check_package(cfg))

    def test_ignore_of_other_rule_does_not_mask(self, tmp_path):
        cfg = make_pkg(tmp_path, {
            "sim": "def run():\n    return 1\n",
            "store": "def save(path, text):\n"
                     "    fh = open(path, 'w')  "
                     "# reprolint: ignore[io/json-unsorted]\n"
                     "    fh.write(text)\n",
        })
        assert "io/bare-write" in rules_of(check_package(cfg))


class TestGate:
    def test_every_rule_family_registered(self):
        for rule in CHECKERS:
            assert rule in RULES, rule
            severity, pass_name, _ = RULES[rule]
            assert pass_name == "codecheck"
            assert severity in ("error", "warning")
        assert len(CHECKERS) >= 12

    def test_repo_tip_is_clean(self):
        findings = check_package(default_config())
        details = "\n".join(
            f"{f.rule} {f.where} {f.message}" for f in findings
        )
        assert not findings, f"repo tip has code-invariant findings:\n{details}"

    def test_findings_deterministic_and_serializable(self, tmp_path):
        cfg = make_pkg(tmp_path, {
            "sim": "import time\n\n\ndef run():\n    return time.time()\n",
            "store": TestIoRules.BARE,
        })
        a = check_package(cfg)
        b = check_package(cfg)
        assert [f.as_dict() for f in a] == [f.as_dict() for f in b]
        json.dumps([f.as_dict() for f in a], sort_keys=True)


class TestKnobs:
    def test_get_raw_rejects_undeclared(self):
        with pytest.raises(KeyError):
            knobs.get_raw("REPRO_NOT_A_KNOB")

    def test_bool_parsing(self, monkeypatch):
        for val, expect in [("1", True), ("true", True), ("YES", True),
                            ("on", True), ("0", False), ("", False),
                            ("banana", False)]:
            monkeypatch.setenv("REPRO_SIMCACHE", val)
            assert knobs.get_bool("REPRO_SIMCACHE") is expect

    def test_tristate_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert knobs.get_tristate("REPRO_TRACE") is None
        monkeypatch.setenv("REPRO_TRACE", "off")
        assert knobs.get_tristate("REPRO_TRACE") is False
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert knobs.get_tristate("REPRO_TRACE") is True
        monkeypatch.setenv("REPRO_TRACE", "maybe")
        assert knobs.get_tristate("REPRO_TRACE") is None

    def test_numeric_fallbacks(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "7")
        assert knobs.get_int("REPRO_RETRIES", 2) == 7
        monkeypatch.setenv("REPRO_RETRIES", "2.5")
        assert knobs.get_int("REPRO_RETRIES", 2) == 2
        monkeypatch.setenv("REPRO_BACKOFF", "0.5")
        assert knobs.get_float("REPRO_BACKOFF", 0.05) == 0.5
        monkeypatch.setenv("REPRO_BACKOFF", "soon")
        assert knobs.get_float("REPRO_BACKOFF", 0.05) == 0.05

    def test_rows_sorted_and_complete(self):
        rows = knobs.knob_rows()
        names = [r["knob"] for r in rows]
        assert names == sorted(names)
        assert set(names) == set(knobs.KNOBS)
        for row in rows:
            assert row["doc"]
            assert row["type"] in ("bool", "tristate", "int", "float",
                                   "str", "path")
