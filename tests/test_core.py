"""Tests for the co-design core: sweeps, roofline, selection, reporting."""

import pytest

from repro.core import (
    Choice,
    DesignPoint,
    arithmetic_intensity,
    format_series,
    format_table,
    geomean,
    measured_choice,
    normalize,
    paper_rule,
    roofline_table,
    run_design_point,
    speedup,
    summarize_stats,
    sweep_cache_sizes,
    sweep_lanes,
    sweep_vector_lengths,
)
from repro.kernels import ConvSpec
from repro.machine import a64fx, rvv_gem5
from repro.nets import ConvLayer, KernelPolicy, Network
from repro.workloads import TABLE4_LAYERS


def small_net():
    return Network(
        [ConvLayer(8, 3, 1), ConvLayer(16, 3, 2)], input_shape=(4, 32, 32)
    )


class TestSweeps:
    def test_vector_length_sweep(self):
        res = sweep_vector_lengths(
            small_net(), [512, 2048], lambda v: rvv_gem5(vlen_bits=v)
        )
        assert res.axis == [512, 2048]
        assert len(res.stats) == 2
        assert res.speedups()[0] == 1.0
        assert res.speedups()[1] > 1.0  # longer vectors help

    def test_cache_sweep(self):
        res = sweep_cache_sizes(
            small_net(), [1, 64], lambda mb: rvv_gem5(vlen_bits=4096, l2_mb=mb)
        )
        assert res.cycles()[1] <= res.cycles()[0]

    def test_lanes_sweep(self):
        res = sweep_lanes(
            small_net(), [2, 8], lambda l: rvv_gem5(vlen_bits=4096, lanes=l)
        )
        assert res.cycles()[1] < res.cycles()[0]

    def test_rows(self):
        res = sweep_vector_lengths(
            small_net(), [512], lambda v: rvv_gem5(vlen_bits=v)
        )
        row = res.as_rows()[0]
        assert set(row) >= {"vlen_bits", "cycles", "speedup", "l2_miss_rate"}

    def test_design_point(self):
        p = DesignPoint(rvv_gem5(), KernelPolicy(), label="x")
        st = run_design_point(small_net(), p)
        assert st.cycles > 0
        assert p.name() == "x"
        assert DesignPoint(rvv_gem5()).name().startswith("rvv")


class TestRoofline:
    def test_ai_formula_matches_table4(self):
        for row in TABLE4_LAYERS:
            # rel=0.05 because the paper rounds (e.g. L3: 10.66 -> "11").
            assert arithmetic_intensity(row.M, row.N, row.K) == pytest.approx(
                row.ai_paper, rel=0.05
            )

    def test_roofline_table_small_subset(self):
        rows = roofline_table(rows=TABLE4_LAYERS[:2])
        assert len(rows) == 2
        for r in rows:
            assert 0 < r.pct_peak < 100
            assert r.ai == pytest.approx(r.ai_paper, rel=0.03)

    def test_low_ai_layer_has_lower_pct_peak(self):
        """Table IV trend: L1 (AI 7.3) sustains less than L10 (AI 101)."""
        sub = [TABLE4_LAYERS[0], TABLE4_LAYERS[5]]
        rows = roofline_table(rows=sub)
        assert rows[0].pct_peak < rows[1].pct_peak


class TestSelection:
    def test_paper_rule(self):
        assert paper_rule(ConvSpec(4, 8, 8, 4, 3, 1, 1)).algorithm == "winograd"
        assert paper_rule(ConvSpec(4, 8, 8, 4, 3, 2, 1)).algorithm == "im2col"
        assert paper_rule(ConvSpec(4, 8, 8, 4, 1, 1, 0)).algorithm == "im2col"

    def test_measured_choice_agrees_with_rule_on_a64fx(self):
        m = a64fx()
        s1 = ConvSpec(64, 76, 76, 128, 3, 1, 1)
        s2 = ConvSpec(64, 76, 76, 128, 3, 2, 1)
        c1 = measured_choice(s1, m)
        c2 = measured_choice(s2, m)
        assert c1.algorithm == "winograd"
        assert c2.algorithm == "im2col"
        assert c1.winograd_cycles < c1.gemm_cycles

    def test_measured_choice_inapplicable(self):
        c = measured_choice(ConvSpec(4, 8, 8, 4, 1, 1, 0), a64fx())
        assert c.algorithm == "im2col"
        assert c.gemm_cycles is None

    def test_choice_is_frozen(self):
        c = Choice("winograd", "why")
        with pytest.raises(Exception):
            c.algorithm = "fft"


class TestMetricsReporting:
    def test_speedup(self):
        assert speedup(100, 50) == 2.0
        with pytest.raises(ValueError):
            speedup(100, 0)

    def test_geomean(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1, -1])

    def test_summarize(self):
        st = small_net().simulate(rvv_gem5())
        d = summarize_stats(st)
        assert d["cycles"] == st.cycles
        assert d["time_ms"] > 0

    def test_format_table(self):
        out = format_table(
            [{"a": 1, "b": 1.23456}, {"a": 2, "b": 3.0}], title="T"
        )
        assert "T" in out and "1.235" in out and out.count("\n") == 4

    def test_format_table_empty(self):
        assert "empty" in format_table([])

    def test_format_series(self):
        out = format_series("s", [1, 2], [0.5, 1.0])
        assert "s" in out and "0.5" in out

    def test_normalize(self):
        assert normalize([2.0, 4.0]) == [1.0, 2.0]
        with pytest.raises(ValueError):
            normalize([0.0, 1.0])


class TestCsvExport:
    def test_sweep_roundtrip(self, tmp_path):
        from repro.core import sweep_to_csv

        res = sweep_vector_lengths(
            small_net(), [512, 1024], lambda v: rvv_gem5(vlen_bits=v)
        )
        path = tmp_path / "fig6.csv"
        sweep_to_csv(res, str(path))
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("vlen_bits,cycles,speedup")
        assert len(lines) == 3  # header + 2 points

    def test_empty_rows_rejected(self, tmp_path):
        from repro.core import rows_to_csv

        with pytest.raises(ValueError):
            rows_to_csv([], str(tmp_path / "x.csv"))
