"""Tests for the TLB model and the coarse range-residency model."""

from repro.machine import MemoryHierarchy, a64fx, rvv_gem5, sve_gem5
from repro.machine.hierarchy import Tlb


class TestTlb:
    def make(self, entries=4):
        return Tlb(entries=entries, page_bytes=4096, penalty=30)

    def test_cold_miss_then_hit(self):
        t = self.make()
        assert t.access(0, 4) == 30
        assert t.access(100, 4) == 0
        assert (t.hits, t.misses) == (1, 1)

    def test_page_granularity(self):
        t = self.make()
        t.access(0, 4)
        assert t.access(4095, 1) == 0  # same page
        assert t.access(4096, 1) == 30  # next page

    def test_spanning_access(self):
        t = self.make()
        assert t.access(4000, 8192) == 3 * 30  # touches 3 pages

    def test_lru_eviction(self):
        t = self.make(entries=2)
        t.access(0, 4)
        t.access(4096, 4)
        t.access(0, 4)  # refresh page 0
        t.access(8192, 4)  # evicts page 1 (LRU)
        assert t.access(0, 4) == 0
        assert t.access(4096, 4) == 30

    def test_flush(self):
        t = self.make()
        t.access(0, 4)
        t.flush()
        assert t.access(0, 4) == 30

    def test_thrash_many_streams(self):
        """The 3-loop GEMM pattern: more concurrent pages than entries."""
        t = self.make(entries=4)
        cost = 0
        for _round in range(3):
            for s in range(8):
                cost += t.access(s * 100_000, 4)
        assert cost == 3 * 8 * 30  # every access misses

    def test_machine_wiring(self):
        assert MemoryHierarchy(a64fx()).tlb is not None  # real silicon
        assert MemoryHierarchy(rvv_gem5()).tlb is None  # gem5 SE mode
        assert MemoryHierarchy(sve_gem5()).tlb is None


class TestRangeResidency:
    def hier(self, l2_mb=1):
        return MemoryHierarchy(rvv_gem5(l2_mb=l2_mb))

    def test_range_hit_counts_as_l2_hit(self):
        h = self.hier()
        h.note_resident_range(1 << 20, 4096)
        lat, _occ, st = h.vector_access(1 << 20, 64)
        assert st[2] == 1 and st[3] == 0  # L2 hit, no miss

    def test_outside_range_misses(self):
        h = self.hier()
        h.note_resident_range(1 << 20, 4096)
        _, _occ, st = h.vector_access(1 << 22, 64)
        assert st[3] == 1  # miss

    def test_oversized_range_keeps_tail(self):
        """A buffer bigger than the L2 leaves only its tail resident."""
        h = self.hier(l2_mb=1)
        base = 1 << 24
        h.note_resident_range(base, 8 << 20)  # 8 MB into a 1 MB L2
        _, _occ, st = h.vector_access(base, 64)  # head: evicted
        assert st[3] == 1
        _, _occ, st = h.vector_access(base + (8 << 20) - 64, 64)  # tail
        assert st[2] == 1

    def test_big_cache_keeps_whole_range(self):
        h = self.hier(l2_mb=256)
        base = 1 << 24
        h.note_resident_range(base, 8 << 20)
        _, _occ, st = h.vector_access(base, 64)
        assert st[2] == 1  # head survives in a 256 MB L2

    def test_lru_between_ranges(self):
        h = self.hier(l2_mb=1)
        a, b, c = 1 << 24, 1 << 25, 1 << 26
        half = 512 << 10
        h.note_resident_range(a, half)
        h.note_resident_range(b, half)
        h.note_resident_range(c, half)  # evicts range a (budget = 1 MB)
        _, _o, st = h.vector_access(a, 64)
        assert st[3] == 1
        _, _o, st = h.vector_access(b, 64)
        assert st[2] == 1

    def test_reregistration_replaces(self):
        h = self.hier()
        h.note_resident_range(0, 4096)
        h.note_resident_range(0, 4096)  # same range, no double counting
        assert len(h._ranges) == 1

    def test_zero_size_ignored(self):
        h = self.hier()
        h.note_resident_range(0, 0)
        assert h._ranges == []

    def test_flush_clears_ranges(self):
        h = self.hier()
        h.note_resident_range(0, 4096)
        h.flush()
        _, _o, st = h.vector_access(0, 64)
        assert st[3] == 1


class TestResidencyDrivesCacheSweep:
    def test_workspace_reuse_visible_only_in_big_cache(self):
        """The Fig. 7 mechanism in miniature: a 4 MB buffer written then
        re-read hits only when the L2 can hold it."""

        def misses(l2_mb):
            h = MemoryHierarchy(rvv_gem5(l2_mb=l2_mb))
            h.note_resident_range(1 << 24, 4 << 20)
            miss = 0
            for i in range(0, 4 << 20, 64 << 8):  # sample lines
                _, _o, st = h.vector_access((1 << 24) + i, 64)
                miss += st[3]
            return miss

        assert misses(64) == 0
        assert misses(1) > 0
