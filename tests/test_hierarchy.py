"""Tests for the memory hierarchy and its two VPU-integration styles."""

import pytest

from repro.machine import AccessStats, MemoryHierarchy, a64fx, rvv_gem5, sve_gem5


class TestRVVPath:
    """RVV: vector accesses go VectorCache -> L2, bypassing the L1."""

    def test_vector_bypasses_l1(self):
        h = MemoryHierarchy(rvv_gem5())
        lat, _occ, st = h.vector_access(0, 64)
        assert st[AccessStats.L1_HITS] == 0
        assert st[AccessStats.L1_MISSES] == 0
        assert st[AccessStats.L2_MISSES] == 1
        assert h.l1.accesses == 0

    def test_vector_cache_exists_and_hits(self):
        h = MemoryHierarchy(rvv_gem5())
        assert h.vector_cache is not None
        assert h.vector_cache.size_bytes == 2048
        h.vector_access(0, 64)
        lat, _occ, st = h.vector_access(0, 64)
        assert st[AccessStats.VC_HITS] == 1
        assert lat < h.cfg.l2.latency  # VC hit is cheaper than L2

    def test_l2_hit_after_fill(self):
        h = MemoryHierarchy(rvv_gem5())
        h.vector_access(0, 64)
        # Touch enough other lines to push line 0 out of the tiny VC
        # (2 KB = 32 lines) but not out of the 1 MB L2.
        for i in range(1, 64):
            h.vector_access(i * 64, 64)
        lat, _occ, st = h.vector_access(0, 64)
        assert st[AccessStats.L2_HITS] == 1
        assert st[AccessStats.VC_HITS] == 0

    def test_scalar_still_uses_l1(self):
        h = MemoryHierarchy(rvv_gem5())
        h.scalar_access(0, 4)
        lat, _occ, st = h.scalar_access(0, 4)
        assert st[AccessStats.L1_HITS] == 1
        assert lat == h.cfg.l1.latency

    def test_sw_prefetch_interface_fills(self):
        # The hierarchy honours the call; gating on machine flags is the
        # simulator's job.
        h = MemoryHierarchy(rvv_gem5())
        filled = h.sw_prefetch(0, 256, "L2")
        assert filled == 4
        lat, _occ, st = h.vector_access(0, 64)
        assert st[AccessStats.L2_HITS] == 1


class TestSVEPath:
    """SVE: vector accesses travel through the L1 like scalar data."""

    def test_vector_uses_l1(self):
        h = MemoryHierarchy(sve_gem5())
        h.vector_access(0, 64)
        lat, _occ, st = h.vector_access(0, 64)
        assert st[AccessStats.L1_HITS] == 1
        assert lat == h.cfg.l1.latency

    def test_no_vector_cache(self):
        assert MemoryHierarchy(sve_gem5()).vector_cache is None

    def test_miss_cascade_latency(self):
        h = MemoryHierarchy(sve_gem5())
        cfg = h.cfg
        lat, _occ, st = h.vector_access(0, 64)
        assert st[AccessStats.DRAM] == 1
        assert lat == cfg.l1.latency + cfg.l2.latency + cfg.dram_latency
        lat2, _occ2, st2 = h.vector_access(0, 64)
        assert lat2 == cfg.l1.latency

    def test_multiline_access_counts_each_line(self):
        h = MemoryHierarchy(sve_gem5())
        lat, _occ, st = h.vector_access(0, 256)  # 4 x 64B lines
        assert st[AccessStats.L1_MISSES] == 4


class TestA64FXPath:
    def test_wide_lines(self):
        h = MemoryHierarchy(a64fx())
        # 256B lines: one miss covers 256 bytes.
        lat, _occ, st = h.vector_access(0, 256)
        assert st[AccessStats.L1_MISSES] == 1

    def test_hw_prefetcher_active(self):
        h = MemoryHierarchy(a64fx())
        # Stream 20 sequential 256B lines through: prefetcher converts
        # most misses to hits.
        misses = 0
        for i in range(20):
            _, _occ, st = h.vector_access(i * 256, 256)
            misses += st[AccessStats.L1_MISSES]
        assert misses < 6

    def test_sw_prefetch_l1_implies_l2(self):
        h = MemoryHierarchy(a64fx())
        h.sw_prefetch(0, 256, "L1")
        assert h.l1.contains(0)
        assert h.l2.contains(0)

    def test_bad_prefetch_level(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(a64fx()).sw_prefetch(0, 64, "L3")


class TestFlush:
    def test_flush_clears_everything(self):
        h = MemoryHierarchy(rvv_gem5())
        h.vector_access(0, 64)
        h.scalar_access(0, 4)
        h.flush()
        _, _occ, st = h.vector_access(0, 64)
        assert st[AccessStats.L2_MISSES] == 1
        _, _occ, st = h.scalar_access(0, 4)
        assert st[AccessStats.L1_MISSES] == 1


class TestCapacityBehaviour:
    def test_bigger_l2_fewer_misses_on_reuse(self):
        """Working set of 4 MB streamed twice: misses drop when L2 grows
        from 1 MB to 8 MB — the mechanism behind Fig. 7."""

        def run(l2_mb):
            h = MemoryHierarchy(rvv_gem5(l2_mb=l2_mb))
            misses = 0
            for _pass in range(2):
                for i in range(4 * 1024 * 1024 // 64):
                    _, _occ, st = h.vector_access(i * 64, 64)
                    misses += st[AccessStats.L2_MISSES]
            return misses

        assert run(8) < run(1)
