#!/usr/bin/env python
"""Kill-resume smoke test: SIGKILL a sweep mid-run, resume, diff stats.

Unlike ``tests/test_resilience.py`` — which injects faults *inside* one
process — this script proves the journal survives a real, untimed
``SIGKILL`` of the whole CLI process: no ``atexit``, no ``finally``, no
flushing courtesy.  Protocol:

1. run ``repro sweep --json`` in a scratch cache dir → baseline stats;
2. start the same sweep with ``--resume`` in a fresh scratch dir, poll
   its journal until the first design point is checkpointed, and
   ``SIGKILL`` the process;
3. run ``repro sweep --resume --json`` to completion;
4. assert the resumed stats are *exactly* equal to the baseline (JSON
   float round-tripping is exact, so this is a bitwise comparison) and
   that at least one point was restored from the journal.

Deliberately not named ``test_*.py``: pytest must not collect it (it
spawns subprocesses and takes tens of seconds).  CI runs it directly:
``python tests/smoke_kill_resume.py``.  Exit code 0 on success.

``--jobs-chaos`` runs the durable-job chaos matrix instead: for every
registered job-store fault site (``jobs.record``, ``jobs.lease``,
``jobs.heartbeat``, ``jobs.adopt``, ``jobs.cancel``, ``journal.seal``)
it SIGKILLs (``os._exit(137)`` via the ``crash`` fault kind) a ``repro
submit`` owner at that site, resubmits the same grid, and asserts the
job is adopted and the final stats are bitwise-identical to an
uninterrupted baseline — serially and with ``--jobs 2`` — plus the
dedup proof (a duplicate submission answers from the sealed record
with zero simulations) and a ``repro jobs gc`` pass over the wreckage.
"""

import json
import os
import subprocess
import sys
import tempfile
import time

SWEEP_ARGS = [
    "sweep", "--net", "yolov3-tiny", "--layers", "10",
    "--axis", "cache", "--values", "1", "4", "16",
    "--no-trace",  # one checkpoint per point, not one per trace group
]
POLL_S = 0.002
KILL_DEADLINE_S = 120.0
ENV_KEEP_JOURNAL = "SMOKE_KEEP_JOURNAL"  # CI artifact path, optional


def run_sweep(extra, cache_dir, **popen_kw):
    env = dict(os.environ, REPRO_SIMCACHE_DIR=cache_dir)
    env.setdefault("PYTHONPATH", "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *SWEEP_ARGS, *extra],
        env=env, **popen_kw,
    )


def sweep_json(extra, cache_dir):
    proc = run_sweep(
        [*extra, "--json"], cache_dir,
        stdout=subprocess.PIPE, text=True,
    )
    out, _ = proc.communicate(timeout=600)
    if proc.returncode != 0:
        raise SystemExit(f"sweep {extra} failed with rc={proc.returncode}")
    return json.loads(out)


def journal_points(cache_dir):
    """(n_checkpointed_points, done?) summed over all journals."""
    directory = os.path.join(cache_dir, "journal")
    points, done = 0, False
    try:
        names = os.listdir(directory)
    except OSError:
        return 0, False
    for name in names:
        if not name.endswith(".jsonl"):
            continue
        try:
            with open(os.path.join(directory, name), encoding="utf-8") as fh:
                for line in fh:
                    if '"kind": "point"' in line:
                        points += 1
                    elif '"kind": "done"' in line:
                        done = True
        except OSError:
            pass
    return points, done


def main() -> int:
    scratch = tempfile.mkdtemp(prefix="kill-resume-")
    baseline_dir = os.path.join(scratch, "baseline")
    victim_dir = os.path.join(scratch, "victim")

    print("[1/4] baseline sweep (uninterrupted)...")
    baseline = sweep_json([], baseline_dir)
    n_points = len(baseline["points"])

    print("[2/4] journaled sweep, SIGKILL after the first checkpoint...")
    victim = run_sweep(
        ["--resume"], victim_dir,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + KILL_DEADLINE_S
    while time.monotonic() < deadline:
        points, _ = journal_points(victim_dir)
        if points >= 1 or victim.poll() is not None:
            break
        time.sleep(POLL_S)
    victim.kill()
    victim.wait()
    killed_points, killed_done = journal_points(victim_dir)
    print(
        f"      killed with {killed_points}/{n_points} points journaled "
        f"(done={killed_done})"
    )
    if not 1 <= killed_points < n_points or killed_done:
        raise SystemExit(
            "smoke race lost: the sweep was not killed mid-run "
            f"({killed_points}/{n_points} points, done={killed_done})"
        )

    print("[3/4] resuming the killed sweep...")
    resumed = sweep_json(["--resume"], victim_dir)

    print("[4/4] comparing resumed stats against the baseline...")
    sources = [p["source"] for p in resumed["points"]]
    if sources.count("journal") < killed_points:
        raise SystemExit(f"expected journal-restored points, got {sources}")
    for i, (a, b) in enumerate(zip(baseline["points"], resumed["points"])):
        if a["stats"] != b["stats"]:
            raise SystemExit(f"point {i} diverged after kill+resume")

    keep = os.environ.get(ENV_KEEP_JOURNAL, "")
    if keep:
        import shutil

        os.makedirs(keep, exist_ok=True)
        src = os.path.join(victim_dir, "journal")
        if os.path.isdir(src):
            shutil.copytree(src, os.path.join(keep, "journal"), dirs_exist_ok=True)
    print(f"OK: {n_points} points bitwise-identical after SIGKILL+resume "
          f"(sources: {sources})")
    return 0


# ----------------------------------------------------------------------
# Durable-job chaos matrix (--jobs-chaos)
# ----------------------------------------------------------------------

SUBMIT_ARGS = [
    "submit", "--net", "yolov3-tiny", "--layers", "4",
    "--axis", "cache", "--values", "1", "4", "16",
]
CRASH_RC = 137  # the 'crash' fault kind calls os._exit(137)


def _write_faults(path, specs):
    """Write a REPRO_FAULTS schedule; *specs* are (site, kind[, index])."""
    doc = []
    for spec in specs:
        site, kind = spec[0], spec[1]
        doc.append({
            "site": site, "kind": kind,
            "index": spec[2] if len(spec) > 2 else None,
            "match": None, "times": 1, "seconds": 30.0,
            "fault_id": f"{site}--{kind}--smoke",
        })
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return path


def run_cli(args, cache_dir, faults=None, want_json=False, jobs=None):
    """Run ``python -m repro <args>`` against *cache_dir*.

    Returns ``(rc, parsed_json_or_None)``.  Heartbeats are unthrottled
    (``REPRO_HEARTBEAT=0``) so lease renewals — and the heartbeat fault
    site — fire at every opportunity.
    """
    env = dict(os.environ, REPRO_SIMCACHE_DIR=cache_dir, REPRO_HEARTBEAT="0")
    env.setdefault("PYTHONPATH", "src")
    env.pop("REPRO_FAULTS", None)
    if faults:
        env["REPRO_FAULTS"] = faults
    argv = list(args)
    if want_json:
        argv.append("--json")
    if jobs is not None and argv[0] == "submit":
        argv += ["--jobs", str(jobs)]
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True, timeout=600,
    )
    doc = None
    if want_json and proc.returncode == 0 and proc.stdout.strip():
        doc = json.loads(proc.stdout)
    return proc.returncode, doc


def _assert_bitwise(label, baseline_points, points):
    if len(points) != len(baseline_points):
        raise SystemExit(f"{label}: expected {len(baseline_points)} points, "
                         f"got {len(points)}")
    for i, (a, b) in enumerate(zip(baseline_points, points)):
        if a["stats"] != b["stats"]:
            raise SystemExit(f"{label}: point {i} diverged after kill+resume")


def _chaos_case(label, scratch, baseline_points, jobs, crash_phases,
                final_args=None):
    """One matrix entry: crash phases, then a clean resubmit, then diff.

    *crash_phases* is a list of fault-spec lists; each runs ``repro
    submit`` (or *final_args*-style custom argv via a (argv, specs)
    tuple) expecting the injected ``os._exit(137)``.
    """
    victim = os.path.join(scratch, label.replace("/", "_").replace(" ", "_"))
    os.makedirs(victim, exist_ok=True)
    for n, phase in enumerate(crash_phases):
        argv, specs = phase if isinstance(phase, tuple) else (SUBMIT_ARGS, phase)
        faults = _write_faults(os.path.join(victim, f"faults{n}.json"), specs)
        rc, _ = run_cli(argv, victim, faults=faults, jobs=jobs)
        if rc != CRASH_RC:
            raise SystemExit(
                f"{label} phase {n}: expected injected crash rc={CRASH_RC}, "
                f"got rc={rc}"
            )
    rc, doc = run_cli(final_args or SUBMIT_ARGS, victim, want_json=True,
                      jobs=jobs)
    if rc != 0 or doc is None:
        raise SystemExit(f"{label}: clean resubmit failed with rc={rc}")
    if doc.get("state") != "done":
        raise SystemExit(f"{label}: resubmit ended {doc.get('state')!r}")
    _assert_bitwise(label, baseline_points, doc["points"])
    print(f"      {label}: adopted={doc.get('adopted')} "
          f"sealed={doc.get('sealed')} "
          f"sources={[p['source'] for p in doc['points']]}")
    return victim, doc


def jobs_chaos() -> int:
    scratch = tempfile.mkdtemp(prefix="jobs-chaos-")
    print("[1/4] uninterrupted baseline submit...")
    rc, baseline = run_cli(SUBMIT_ARGS, os.path.join(scratch, "baseline"),
                           want_json=True)
    if rc != 0 or baseline is None or baseline["state"] != "done":
        raise SystemExit(f"baseline submit failed (rc={rc})")
    base_points = baseline["points"]

    for engine, jobs in (("serial", None), ("parallel", 2)):
        print(f"[2/4] chaos matrix, {engine} engine...")
        # Crash before the job record is even created.
        _chaos_case(f"{engine}/jobs.record", scratch, base_points, jobs,
                    [[("jobs.record", "crash")]])
        # Crash before the first lease write: record exists, no owner.
        _chaos_case(f"{engine}/jobs.lease", scratch, base_points, jobs,
                    [[("jobs.lease", "crash")]])
        # Crash at the first heartbeat renewal: dead owner holds the
        # lease; the resubmit must adopt it (same-host pid liveness).
        _, doc = _chaos_case(f"{engine}/jobs.heartbeat", scratch, base_points,
                             jobs, [[("jobs.heartbeat", "crash")]])
        if not doc.get("adopted"):
            raise SystemExit(f"{engine}/jobs.heartbeat: expected adoption")
        # Adoption race: kill one owner mid-run, kill the *adopter* in
        # its adoption window, then adopt cleanly on the third try.
        _chaos_case(f"{engine}/jobs.adopt", scratch, base_points, jobs,
                    [[("jobs.heartbeat", "crash")],
                     [("jobs.adopt", "crash")]])
        # Kill an owner mid-run (state=running, stale lease), then kill
        # 'repro cancel' before its durable marker lands: no intent was
        # recorded, so the resubmit must adopt and complete normally.
        job_id = baseline["job"]  # content-derived: same id in every store
        _chaos_case(
            f"{engine}/jobs.cancel", scratch, base_points, jobs,
            [[("jobs.heartbeat", "crash")],
             (["cancel", job_id], [("jobs.cancel", "crash")])],
        )
        # Crash between writing the sealed record and unlinking the
        # journal: both halves of the recoverable pair must exist, the
        # resubmit answers warm from the sealed record, and gc finishes
        # the compaction protocol.
        victim, doc = _chaos_case(f"{engine}/journal.seal", scratch,
                                  base_points, jobs,
                                  [[("journal.seal", "crash")]])
        journal_dir = os.path.join(victim, "journal")
        names = sorted(os.listdir(journal_dir))
        if not any(n.endswith(".sealed.json") for n in names):
            raise SystemExit(f"{engine}/journal.seal: sealed record missing "
                             f"after resubmit ({names})")
        if [p["source"] for p in doc["points"]] != ["sealed"] * len(base_points):
            raise SystemExit(
                f"{engine}/journal.seal: expected a warm sealed answer, got "
                f"{[p['source'] for p in doc['points']]}"
            )
        rc, gc_doc = run_cli(["jobs", "gc"], victim, want_json=True)
        if rc != 0:
            raise SystemExit(f"{engine}/journal.seal: gc failed rc={rc}")
        if any(n.endswith(".jsonl") for n in sorted(os.listdir(journal_dir))):
            raise SystemExit(f"{engine}/journal.seal: gc left the live "
                             "journal behind")

    print("[3/4] duplicate-submission dedup (zero extra simulations)...")
    dedup_dir = os.path.join(scratch, "baseline")
    rc, doc = run_cli(SUBMIT_ARGS, dedup_dir, want_json=True)
    if rc != 0 or [p["source"] for p in doc["points"]] != \
            ["sealed"] * len(base_points):
        raise SystemExit(
            "duplicate submission simulated instead of attaching: "
            f"{[p['source'] for p in doc['points']]}"
        )
    if not doc.get("attached"):
        raise SystemExit("duplicate submission did not report attachment")
    _assert_bitwise("dedup", base_points, doc["points"])

    print("[4/4] store-wide gc --dry-run over all scratch stores...")
    rc, _ = run_cli(["jobs", "gc", "--dry-run"], dedup_dir, want_json=True)
    if rc != 0:
        raise SystemExit(f"jobs gc --dry-run failed rc={rc}")

    keep = os.environ.get(ENV_KEEP_JOURNAL, "")
    if keep:
        import shutil

        os.makedirs(keep, exist_ok=True)
        for sub in ("jobs", "journal"):
            src = os.path.join(dedup_dir, sub)
            if os.path.isdir(src):
                shutil.copytree(src, os.path.join(keep, sub),
                                dirs_exist_ok=True)
    print("OK: every job-store fault site survived SIGKILL + resubmit with "
          "bitwise-identical results (serial and parallel)")
    return 0


if __name__ == "__main__":
    if "--jobs-chaos" in sys.argv:
        sys.exit(jobs_chaos())
    sys.exit(main())
