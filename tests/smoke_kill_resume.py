#!/usr/bin/env python
"""Kill-resume smoke test: SIGKILL a sweep mid-run, resume, diff stats.

Unlike ``tests/test_resilience.py`` — which injects faults *inside* one
process — this script proves the journal survives a real, untimed
``SIGKILL`` of the whole CLI process: no ``atexit``, no ``finally``, no
flushing courtesy.  Protocol:

1. run ``repro sweep --json`` in a scratch cache dir → baseline stats;
2. start the same sweep with ``--resume`` in a fresh scratch dir, poll
   its journal until the first design point is checkpointed, and
   ``SIGKILL`` the process;
3. run ``repro sweep --resume --json`` to completion;
4. assert the resumed stats are *exactly* equal to the baseline (JSON
   float round-tripping is exact, so this is a bitwise comparison) and
   that at least one point was restored from the journal.

Deliberately not named ``test_*.py``: pytest must not collect it (it
spawns subprocesses and takes tens of seconds).  CI runs it directly:
``python tests/smoke_kill_resume.py``.  Exit code 0 on success.
"""

import json
import os
import subprocess
import sys
import tempfile
import time

SWEEP_ARGS = [
    "sweep", "--net", "yolov3-tiny", "--layers", "10",
    "--axis", "cache", "--values", "1", "4", "16",
    "--no-trace",  # one checkpoint per point, not one per trace group
]
POLL_S = 0.002
KILL_DEADLINE_S = 120.0
ENV_KEEP_JOURNAL = "SMOKE_KEEP_JOURNAL"  # CI artifact path, optional


def run_sweep(extra, cache_dir, **popen_kw):
    env = dict(os.environ, REPRO_SIMCACHE_DIR=cache_dir)
    env.setdefault("PYTHONPATH", "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *SWEEP_ARGS, *extra],
        env=env, **popen_kw,
    )


def sweep_json(extra, cache_dir):
    proc = run_sweep(
        [*extra, "--json"], cache_dir,
        stdout=subprocess.PIPE, text=True,
    )
    out, _ = proc.communicate(timeout=600)
    if proc.returncode != 0:
        raise SystemExit(f"sweep {extra} failed with rc={proc.returncode}")
    return json.loads(out)


def journal_points(cache_dir):
    """(n_checkpointed_points, done?) summed over all journals."""
    directory = os.path.join(cache_dir, "journal")
    points, done = 0, False
    try:
        names = os.listdir(directory)
    except OSError:
        return 0, False
    for name in names:
        if not name.endswith(".jsonl"):
            continue
        try:
            with open(os.path.join(directory, name), encoding="utf-8") as fh:
                for line in fh:
                    if '"kind": "point"' in line:
                        points += 1
                    elif '"kind": "done"' in line:
                        done = True
        except OSError:
            pass
    return points, done


def main() -> int:
    scratch = tempfile.mkdtemp(prefix="kill-resume-")
    baseline_dir = os.path.join(scratch, "baseline")
    victim_dir = os.path.join(scratch, "victim")

    print("[1/4] baseline sweep (uninterrupted)...")
    baseline = sweep_json([], baseline_dir)
    n_points = len(baseline["points"])

    print("[2/4] journaled sweep, SIGKILL after the first checkpoint...")
    victim = run_sweep(
        ["--resume"], victim_dir,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + KILL_DEADLINE_S
    while time.monotonic() < deadline:
        points, _ = journal_points(victim_dir)
        if points >= 1 or victim.poll() is not None:
            break
        time.sleep(POLL_S)
    victim.kill()
    victim.wait()
    killed_points, killed_done = journal_points(victim_dir)
    print(
        f"      killed with {killed_points}/{n_points} points journaled "
        f"(done={killed_done})"
    )
    if not 1 <= killed_points < n_points or killed_done:
        raise SystemExit(
            "smoke race lost: the sweep was not killed mid-run "
            f"({killed_points}/{n_points} points, done={killed_done})"
        )

    print("[3/4] resuming the killed sweep...")
    resumed = sweep_json(["--resume"], victim_dir)

    print("[4/4] comparing resumed stats against the baseline...")
    sources = [p["source"] for p in resumed["points"]]
    if sources.count("journal") < killed_points:
        raise SystemExit(f"expected journal-restored points, got {sources}")
    for i, (a, b) in enumerate(zip(baseline["points"], resumed["points"])):
        if a["stats"] != b["stats"]:
            raise SystemExit(f"point {i} diverged after kill+resume")

    keep = os.environ.get(ENV_KEEP_JOURNAL, "")
    if keep:
        import shutil

        os.makedirs(keep, exist_ok=True)
        src = os.path.join(victim_dir, "journal")
        if os.path.isdir(src):
            shutil.copytree(src, os.path.join(keep, "journal"), dirs_exist_ok=True)
    print(f"OK: {n_points} points bitwise-identical after SIGKILL+resume "
          f"(sources: {sources})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
