"""Parallel sweep execution: parity with the serial path and fallbacks."""

import multiprocessing
import os

import pytest

from repro.core import (
    resolve_jobs,
    simulate_points,
    sweep_lanes,
    sweep_vector_lengths,
    tracecache,
)
from repro.core.parallel import JOBS_ENV
from repro.machine import rvv_gem5, sve_gem5
from repro.machine.simulator import SimStats
from repro.nets import ConvLayer, KernelPolicy, MaxPoolLayer, Network


def small_net():
    return Network(
        [ConvLayer(8, 3, 1), MaxPoolLayer(2, 2), ConvLayer(16, 3, 1)],
        input_shape=(4, 32, 32),
        name="small",
    )


def assert_identical(a: SimStats, b: SimStats):
    for name in SimStats.FIELDS:
        assert getattr(a, name) == getattr(b, name), name
    assert a.kernel_cycles == b.kernel_cycles


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "5")
        assert resolve_jobs(None) == 5

    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(None) == 1

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_garbage_env_is_serial(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "lots")
        assert resolve_jobs(None) == 1


class TestParallelParity:
    """Parallel sweeps must equal serial sweeps field by field."""

    def test_rvv_sweep_identical(self):
        net = small_net()
        vlens = [512, 1024, 2048]

        def factory(v):
            return rvv_gem5(vlen_bits=v, lanes=4, l2_mb=1)
        serial = sweep_vector_lengths(net, vlens, factory, jobs=1)
        parallel = sweep_vector_lengths(net, vlens, factory, jobs=2)
        assert serial.axis == parallel.axis == vlens
        assert len(parallel.stats) == len(vlens)
        for a, b in zip(serial.stats, parallel.stats):
            assert_identical(a, b)

    def test_sve_sweep_identical(self):
        net = small_net()
        policy = KernelPolicy(gemm="6loop")
        serial = sweep_vector_lengths(
            net, [512, 1024], lambda v: sve_gem5(vlen_bits=v), policy, jobs=1
        )
        parallel = sweep_vector_lengths(
            net, [512, 1024], lambda v: sve_gem5(vlen_bits=v), policy, jobs=2
        )
        for a, b in zip(serial.stats, parallel.stats):
            assert_identical(a, b)

    def test_result_order_matches_input_order(self):
        net = small_net()
        vlens = [4096, 512, 2048, 1024]  # deliberately unsorted
        res = sweep_vector_lengths(
            net, vlens, lambda v: rvv_gem5(vlen_bits=v), jobs=2
        )
        assert res.axis == vlens
        # Longer vectors take fewer, larger instructions: vec_instrs must
        # strictly follow the (unsorted) axis order, not completion order.
        by_vlen = dict(zip(res.axis, res.stats))
        assert by_vlen[512].vec_instrs > by_vlen[4096].vec_instrs


class TestParallelReplay:
    """Lane/VL sweeps must replay across processes, bitwise-identically,
    with spill on or off (the shared-memory tier covers both)."""

    @pytest.mark.parametrize("spill", ["0", "1"])
    def test_lane_sweep_parallel_identical(self, monkeypatch, tmp_path, spill):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_TRACE_SPILL", spill)
        tracecache.clear_registry()
        net = small_net()
        lanes = [1, 2, 4, 8]

        def factory(l):
            return rvv_gem5(vlen_bits=512, lanes=l, l2_mb=1)

        direct = sweep_lanes(net, lanes, factory, jobs=1, use_trace=False)
        assert direct.sources == ["direct"] * 4
        tracecache.clear_registry()
        parallel = sweep_lanes(net, lanes, factory, jobs=2)
        assert set(parallel.sources) <= {"captured", "replayed"}
        assert parallel.sources.count("replayed") >= 3
        for a, b in zip(direct.stats, parallel.stats):
            assert_identical(a, b)
        tracecache.clear_registry()

    @pytest.mark.parametrize("spill", ["0", "1"])
    def test_vl_sweep_parallel_replays_when_seeded(
        self, monkeypatch, tmp_path, spill
    ):
        """VL points are singleton trace groups; once a serial sweep has
        seeded their captures, a parallel sweep replays every point in
        the workers instead of simulating."""
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_TRACE_SPILL", spill)
        tracecache.clear_registry()
        net = small_net()
        vlens = [512, 1024, 2048]

        def factory(v):
            return rvv_gem5(vlen_bits=v, lanes=4, l2_mb=1)

        serial = sweep_vector_lengths(net, vlens, factory, jobs=1)
        assert serial.sources == ["captured"] * 3
        parallel = sweep_vector_lengths(net, vlens, factory, jobs=2)
        assert parallel.sources == ["replayed"] * 3
        for a, b in zip(serial.stats, parallel.stats):
            assert_identical(a, b)
        tracecache.clear_registry()

    def test_single_trace_load_per_worker(self, monkeypatch, tmp_path):
        """Spawn-platform workers must decode each event stream at most
        once per worker lifetime — via the shared-memory segment the
        parent publishes, never by re-reading the spill per task."""
        log = tmp_path / "loads.log"
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_TRACE_SPILL", "1")
        monkeypatch.setenv("REPRO_TRACE_LOAD_LOG", str(log))
        # Spawn (not fork) so workers start with empty registries —
        # the platform the shared-memory tier exists for.
        from repro.core import parallel as par

        monkeypatch.setattr(
            par, "multiprocessing", multiprocessing.get_context("spawn")
        )
        tracecache.clear_registry()
        net = small_net()
        # Two lane groups (distinct VLs -> distinct trace keys), two
        # chunks each: workers handle several tasks per event stream.
        machines = [
            rvv_gem5(vlen_bits=v, lanes=l, l2_mb=1)
            for v in (512, 1024)
            for l in (1, 2, 4, 8)
        ]
        out = simulate_points(net, machines, KernelPolicy(), None, 2)
        assert out is not None
        stats, sources = out
        assert sources.count("replayed") >= 6
        lines = [ln.split() for ln in log.read_text().splitlines()]
        # Compiled-pass artifacts (vecprog/pass_shm/pass_spill) may also
        # be loaded — they exist to *avoid* trace decodes, so only the
        # trace-stream loads are constrained here.
        trace_loads = [
            (pid, src, key)
            for pid, src, key in lines
            if src in ("shm", "spill")
        ]
        assert trace_loads, "workers should have loaded the published traces"
        # Every cross-process trace load came from shared memory...
        assert {src for _, src, _ in trace_loads} == {"shm"}
        # ...and no worker decoded the same stream twice.
        seen = [(pid, key) for pid, _, key in trace_loads]
        assert len(seen) == len(set(seen))
        tracecache.clear_registry()


class TestFallbacks:
    def test_single_point_returns_none(self):
        net = small_net()
        assert simulate_points(
            net, [rvv_gem5(vlen_bits=512)], KernelPolicy(), None, 4
        ) is None

    def test_single_job_returns_none(self):
        net = small_net()
        machines = [rvv_gem5(vlen_bits=v) for v in (512, 1024)]
        assert simulate_points(net, machines, KernelPolicy(), None, 1) is None

    def test_unpicklable_network_falls_back(self):
        net = small_net()
        net.unpicklable = lambda: None  # closures cannot be pickled
        machines = [rvv_gem5(vlen_bits=v) for v in (512, 1024)]
        assert simulate_points(net, machines, KernelPolicy(), None, 2) is None
        # ...and the sweep still completes serially.
        res = sweep_vector_lengths(
            net, [512, 1024], lambda v: rvv_gem5(vlen_bits=v), jobs=2
        )
        assert len(res.stats) == 2

    def test_env_driven_parallelism(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "2")
        net = small_net()
        res = sweep_vector_lengths(
            net, [512, 1024], lambda v: rvv_gem5(vlen_bits=v)
        )
        serial = sweep_vector_lengths(
            net, [512, 1024], lambda v: rvv_gem5(vlen_bits=v), jobs=1
        )
        for a, b in zip(res.stats, serial.stats):
            assert_identical(a, b)
