"""Property-based tests on the trace kernels' accounting invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    BlockSizes,
    ConvSpec,
    trace_gemm_3loop,
    trace_gemm_6loop,
    trace_im2col,
    trace_stream_kernel,
)
from repro.kernels.winograd import trace_winograd_conv, winograd_tile_count
from repro.machine import TraceSimulator, a64fx, rvv_gem5, sve_gem5


def gemm_sim(machine, M, N, K):
    sim = TraceSimulator(machine)
    a = sim.alloc("A", M * K * 4)
    b = sim.alloc("B", K * N * 4)
    c = sim.alloc("C", M * N * 4)
    return sim, a.base, b.base, c.base


machines = st.sampled_from(
    [rvv_gem5(512), rvv_gem5(8192), sve_gem5(512), sve_gem5(2048), a64fx()]
)


class TestGemmTraceProperties:
    @given(
        machine=machines,
        M=st.integers(1, 80),
        N=st.integers(1, 700),
        K=st.integers(1, 90),
        unroll=st.sampled_from([4, 16, 32]),
    )
    @settings(max_examples=30, deadline=None)
    def test_3loop_flops_exact_for_any_shape(self, machine, M, N, K, unroll):
        """Weighted sampling must account every MAC exactly, for every
        machine, shape and unroll factor."""
        sim, a, b, c = gemm_sim(machine, M, N, K)
        trace_gemm_3loop(sim, M, N, K, a, b, c, unroll=unroll)
        assert sim.stats.flops == pytest.approx(2 * M * N * K, rel=1e-6)
        assert sim.stats.cycles > 0

    @given(
        machine=machines,
        M=st.integers(1, 60),
        N=st.integers(1, 600),
        K=st.integers(1, 70),
    )
    @settings(max_examples=20, deadline=None)
    def test_6loop_flops_exact_for_any_shape(self, machine, M, N, K):
        sim, a, b, c = gemm_sim(machine, M, N, K)
        trace_gemm_6loop(sim, M, N, K, a, b, c, blocks=BlockSizes(16, 128, 32))
        assert sim.stats.flops == pytest.approx(2 * M * N * K, rel=1e-6)

    @given(M=st.integers(8, 64), N=st.integers(64, 2000), K=st.integers(8, 128))
    @settings(max_examples=15, deadline=None)
    def test_cycles_scale_with_work(self, M, N, K):
        """Doubling N should roughly double the cycles (sampled trace)."""
        m = rvv_gem5(1024)
        sim1, a, b, c = gemm_sim(m, M, N, K)
        trace_gemm_3loop(sim1, M, N, K, a, b, c)
        sim2, a, b, c = gemm_sim(m, M, 2 * N, K)
        trace_gemm_3loop(sim2, M, 2 * N, K, a, b, c)
        ratio = sim2.stats.cycles / sim1.stats.cycles
        assert 1.2 < ratio < 3.5

    @given(machine=machines)
    @settings(max_examples=5, deadline=None)
    def test_load_bytes_at_least_compulsory(self, machine):
        """The GEMM must read at least one full pass of B."""
        M, N, K = 32, 512, 64
        sim, a, b, c = gemm_sim(machine, M, N, K)
        trace_gemm_3loop(sim, M, N, K, a, b, c)
        assert sim.stats.bytes_loaded >= 0.9 * (K * N * 4)


class TestStreamAndIm2colProperties:
    @given(n=st.integers(1, 100_000))
    @settings(max_examples=20, deadline=None)
    def test_stream_bytes_exact(self, n):
        sim = TraceSimulator(sve_gem5(512))
        buf = sim.alloc("x", n * 4)
        trace_stream_kernel(sim, "k", n, buf.base, reads=1, writes=1)
        assert sim.stats.bytes_loaded == pytest.approx(n * 4, rel=1e-6)
        assert sim.stats.bytes_stored == pytest.approx(n * 4, rel=1e-6)

    @given(
        c=st.integers(1, 16),
        hw=st.integers(8, 64),
        k=st.sampled_from([1, 3, 5]),
        s=st.sampled_from([1, 2]),
    )
    @settings(max_examples=20, deadline=None)
    def test_im2col_write_volume(self, c, hw, k, s):
        """im2col writes exactly the K x N matrix."""
        spec = ConvSpec(c, hw, hw, 4, k, s, k // 2)
        sim = TraceSimulator(rvv_gem5(2048))
        src = sim.alloc("x", c * hw * hw * 4)
        dst = sim.alloc("cols", spec.K * spec.N * 4)
        trace_im2col(sim, spec, src.base, dst.base)
        assert sim.stats.bytes_stored == pytest.approx(spec.K * spec.N * 4, rel=0.02)


class TestWinogradTraceProperties:
    @given(
        c=st.integers(1, 32),
        f=st.integers(1, 32),
        hw=st.sampled_from([19, 38, 76]),
    )
    @settings(max_examples=10, deadline=None)
    def test_tuple_flops_lower_bound(self, c, f, hw):
        """The tuple multiplication must perform at least
        64 * F * C * tiles MACs (transforms add more on top)."""
        spec = ConvSpec(c, hw, hw, f, 3, 1, 1)
        sim = TraceSimulator(a64fx())
        trace_winograd_conv(sim, spec)
        expect = 2 * 64 * f * c * winograd_tile_count(spec)
        assert sim.stats.flops >= 0.95 * expect

    @given(machine=machines)
    @settings(max_examples=5, deadline=None)
    def test_winograd_flops_below_direct(self, machine):
        """Winograd's whole point: fewer flops than im2col+GEMM."""
        spec = ConvSpec(32, 76, 76, 32, 3, 1, 1)
        sim = TraceSimulator(machine)
        trace_winograd_conv(sim, spec)
        assert sim.stats.flops < 0.7 * spec.flops
