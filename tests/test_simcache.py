"""Persistent simulation-result cache: hits, invalidation, robustness."""

import json
import os

import pytest

from repro.core import run_design_point, simcache
from repro.core.codesign import DesignPoint
from repro.machine import rvv_gem5
from repro.machine.simulator import SimStats
from repro.nets import ConvLayer, KernelPolicy, Network


@pytest.fixture()
def cache_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SIMCACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_SIMCACHE", raising=False)
    return tmp_path


def small_net(name="net"):
    return Network(
        [ConvLayer(8, 3, 1), ConvLayer(16, 3, 2)],
        input_shape=(4, 32, 32),
        name=name,
    )


def assert_identical(a: SimStats, b: SimStats):
    for field in SimStats.FIELDS:
        assert getattr(a, field) == getattr(b, field), field
    assert a.kernel_cycles == b.kernel_cycles


MACHINE = rvv_gem5(vlen_bits=1024, lanes=4, l2_mb=1)


class TestKey:
    def test_identical_inputs_same_key(self, cache_env):
        k1 = simcache.cache_key(small_net(), MACHINE, KernelPolicy(), None)
        k2 = simcache.cache_key(small_net(), MACHINE, KernelPolicy(), None)
        assert k1 == k2

    @pytest.mark.parametrize(
        "variant",
        [
            lambda: (small_net(), MACHINE.with_(dram_latency=121), KernelPolicy(), None),
            lambda: (small_net(), MACHINE.with_(vlen_bits=2048), KernelPolicy(), None),
            lambda: (small_net(), MACHINE, KernelPolicy(gemm="6loop"), None),
            lambda: (small_net(), MACHINE, KernelPolicy(unroll=8), None),
            lambda: (small_net(), MACHINE, KernelPolicy(), 1),
            lambda: (
                Network([ConvLayer(8, 3, 1), ConvLayer(16, 5, 2)], (4, 32, 32)),
                MACHINE,
                KernelPolicy(),
                None,
            ),
        ],
    )
    def test_any_changed_field_changes_key(self, cache_env, variant):
        base = simcache.cache_key(small_net(), MACHINE, KernelPolicy(), None)
        net, machine, policy, n_layers = variant()
        assert simcache.cache_key(net, machine, policy, n_layers) != base

    def test_nested_machine_field_changes_key(self, cache_env):
        base = simcache.cache_key(small_net(), MACHINE, KernelPolicy(), None)
        deeper = MACHINE.with_(l2=MACHINE.l2.__class__(
            size_bytes=MACHINE.l2.size_bytes,
            assoc=MACHINE.l2.assoc,
            line_bytes=MACHINE.l2.line_bytes,
            latency=MACHINE.l2.latency + 1,
        ))
        assert simcache.cache_key(small_net(), deeper, KernelPolicy(), None) != base


class TestRoundTrip:
    def test_hit_returns_identical_stats(self, cache_env):
        net = small_net()
        fresh = net.simulate(MACHINE, KernelPolicy(), use_cache=False)
        first = net.simulate(MACHINE, KernelPolicy(), use_cache=True)
        assert_identical(fresh, first)
        assert len(os.listdir(cache_env)) == 1
        # Second call must be served from disk and still be identical.
        again = net.simulate(MACHINE, KernelPolicy(), use_cache=True)
        assert_identical(fresh, again)

    def test_miss_on_changed_config(self, cache_env):
        net = small_net()
        net.simulate(MACHINE, KernelPolicy(), use_cache=True)
        net.simulate(MACHINE.with_(dram_latency=150), KernelPolicy(), use_cache=True)
        assert len(os.listdir(cache_env)) == 2

    def test_env_flag_opt_in(self, cache_env, monkeypatch):
        net = small_net()
        net.simulate(MACHINE, KernelPolicy())  # default: off
        assert len(os.listdir(cache_env)) == 0
        monkeypatch.setenv("REPRO_SIMCACHE", "1")
        net.simulate(MACHINE, KernelPolicy())
        assert len(os.listdir(cache_env)) == 1

    def test_run_design_point_uses_cache(self, cache_env):
        net = small_net()
        point = DesignPoint(machine=MACHINE)
        first = run_design_point(net, point, use_cache=True)
        assert len(os.listdir(cache_env)) == 1
        second = run_design_point(net, point, use_cache=True)
        assert_identical(first, second)


class TestRobustness:
    def _entry(self, cache_env):
        (name,) = os.listdir(cache_env)
        return os.path.join(cache_env, name)

    def test_corrupt_json_is_a_miss_not_fatal(self, cache_env):
        net = small_net()
        fresh = net.simulate(MACHINE, KernelPolicy(), use_cache=True)
        with open(self._entry(cache_env), "w") as fh:
            fh.write("{ not json !!!")
        again = net.simulate(MACHINE, KernelPolicy(), use_cache=True)
        assert_identical(fresh, again)

    def test_wrong_schema_is_a_miss(self, cache_env):
        net = small_net()
        fresh = net.simulate(MACHINE, KernelPolicy(), use_cache=True)
        with open(self._entry(cache_env), "w") as fh:
            json.dump({"model_version": simcache.MODEL_VERSION, "bogus": 1}, fh)
        again = net.simulate(MACHINE, KernelPolicy(), use_cache=True)
        assert_identical(fresh, again)

    def test_stale_model_version_is_a_miss(self, cache_env):
        net = small_net()
        fresh = net.simulate(MACHINE, KernelPolicy(), use_cache=True)
        path = self._entry(cache_env)
        with open(path) as fh:
            entry = json.load(fh)
        entry["model_version"] = "ancient"
        with open(path, "w") as fh:
            json.dump(entry, fh)
        assert simcache.load(os.path.basename(path)[: -len(".json")]) is None
        again = net.simulate(MACHINE, KernelPolicy(), use_cache=True)
        assert_identical(fresh, again)

    def test_clear(self, cache_env):
        net = small_net()
        net.simulate(MACHINE, KernelPolicy(), use_cache=True)
        assert simcache.clear() == 1
        assert os.listdir(cache_env) == []
