"""Tests for the three GEMM variants: numerics, structure, traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import RVV, SVE, RegisterFile
from repro.kernels import (
    PAPER_BLOCK_SIZES,
    BlockSizes,
    gemm_3loop,
    gemm_6loop,
    gemm_naive,
    pack_a_panels,
    pack_b_panels,
    trace_gemm_3loop,
    trace_gemm_6loop,
    trace_gemm_naive,
)
from repro.machine import TraceSimulator, a64fx, rvv_gem5, sve_gem5


def rand_problem(m, k, n, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal((m, k)).astype(np.float32),
        rng.standard_normal((k, n)).astype(np.float32),
        rng.standard_normal((m, n)).astype(np.float32),
    )


class TestNumerics:
    @pytest.mark.parametrize("alpha", [1.0, 0.5, -2.0, 0.0])
    def test_naive_matches_blas(self, alpha):
        a, b, c = rand_problem(9, 13, 21)
        ref = c + np.float32(alpha) * (a @ b)
        out = gemm_naive(alpha, a, b, c.copy())
        np.testing.assert_allclose(out, ref, rtol=1e-5, atol=1e-5)

    @pytest.mark.parametrize("isa", [RVV(512), RVV(4096), SVE(512), SVE(2048)])
    def test_3loop_matches_blas(self, isa):
        a, b, c = rand_problem(18, 7, 100)
        ref = c + a @ b
        out = gemm_3loop(isa, 1.0, a, b, c.copy())
        np.testing.assert_allclose(out, ref, rtol=1e-5, atol=1e-5)

    @pytest.mark.parametrize("unroll", [1, 3, 16, 32])
    def test_3loop_any_unroll(self, unroll):
        a, b, c = rand_problem(18, 7, 33)
        ref = c + a @ b
        out = gemm_3loop(RVV(512), 1.0, a, b, c.copy(), unroll=unroll)
        np.testing.assert_allclose(out, ref, rtol=1e-5, atol=1e-5)

    @pytest.mark.parametrize("blocks", PAPER_BLOCK_SIZES)
    def test_6loop_paper_blocks(self, blocks):
        a, b, c = rand_problem(40, 300, 70, seed=3)
        ref = c + a @ b
        out = gemm_6loop(RVV(512), 1.0, a, b, c.copy(), blocks=blocks)
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-4)

    def test_6loop_tiny_blocks_edges(self):
        a, b, c = rand_problem(7, 11, 13, seed=4)
        ref = c + 0.5 * (a @ b)
        out = gemm_6loop(SVE(256), 0.5, a, b, c.copy(), blocks=BlockSizes(4, 8, 3))
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-4)

    def test_shape_mismatch(self):
        a, b, c = rand_problem(4, 5, 6)
        with pytest.raises(ValueError):
            gemm_naive(1.0, a, b[:-1], c)
        with pytest.raises(ValueError):
            gemm_3loop(RVV(512), 1.0, a, b, c[:, :-1])
        with pytest.raises(ValueError):
            gemm_3loop(RVV(512), 1.0, a, b, c, unroll=0)

    @given(
        m=st.integers(1, 12),
        k=st.integers(1, 12),
        n=st.integers(1, 40),
        seed=st.integers(0, 99),
    )
    @settings(max_examples=25, deadline=None)
    def test_variants_agree_property(self, m, k, n, seed):
        """All three GEMMs compute the same function for any shape."""
        a, b, c = rand_problem(m, k, n, seed)
        r1 = gemm_naive(1.0, a, b, c.copy())
        r2 = gemm_3loop(RVV(256), 1.0, a, b, c.copy(), unroll=4)
        r3 = gemm_6loop(SVE(128), 1.0, a, b, c.copy(), blocks=BlockSizes(4, 16, 8))
        np.testing.assert_allclose(r2, r1, rtol=1e-4, atol=1e-4)
        np.testing.assert_allclose(r3, r1, rtol=1e-4, atol=1e-4)


class TestRegisterPressure:
    def test_unroll16_no_spill(self):
        a, b, c = rand_problem(32, 4, 20)
        rf = RegisterFile(RVV(512))
        gemm_3loop(RVV(512), 1.0, a, b, c, unroll=16, regfile=rf)
        assert rf.spills == 0
        assert rf.peak_live == 19  # 16 accumulators + vb + vaalpha + tmp

    def test_unroll32_spills(self):
        # Section VI-A: using all 32 registers causes spilling.
        a, b, c = rand_problem(32, 4, 20)
        rf = RegisterFile(RVV(512))
        gemm_3loop(RVV(512), 1.0, a, b, c, unroll=32, regfile=rf)
        assert rf.spills > 0


class TestPacking:
    def test_pack_b_layout(self):
        b = np.arange(6 * 10, dtype=np.float32).reshape(6, 10)
        p = pack_b_panels(b, k1=1, bk=3, j1=2, bn=6, panel_w=4)
        assert p.shape == (2, 3, 4)
        np.testing.assert_array_equal(p[0, 0], b[1, 2:6])
        np.testing.assert_array_equal(p[1, 2, :2], b[3, 6:8])
        assert (p[1, :, 2:] == 0).all()  # zero padding past the block

    def test_pack_a_transposes(self):
        a = np.arange(8 * 5, dtype=np.float32).reshape(8, 5)
        p = pack_a_panels(a, i1=2, bm=4, k1=1, bk=3, panel_h=2)
        assert p.shape == (2, 3, 2)
        np.testing.assert_array_equal(p[0, :, 0], a[2, 1:4])
        np.testing.assert_array_equal(p[0, :, 1], a[3, 1:4])
        np.testing.assert_array_equal(p[1, :, 0], a[4, 1:4])

    def test_pack_invalid(self):
        b = np.zeros((4, 4), dtype=np.float32)
        with pytest.raises(ValueError):
            pack_b_panels(b, 0, 0, 0, 4, 4)

    def test_footprint(self):
        assert BlockSizes(16, 512, 128).footprint_bytes() == 4 * (
            16 * 128 + 128 * 512 + 16 * 512
        )

    def test_invalid_blocks(self):
        with pytest.raises(ValueError):
            BlockSizes(0, 1, 1)


class TestTraces:
    """Structural checks on the instruction streams the traces emit."""

    def _sim(self, machine, M=32, N=512, K=64):
        sim = TraceSimulator(machine)
        a = sim.alloc("A", M * K * 4)
        b = sim.alloc("B", K * N * 4)
        c = sim.alloc("C", M * N * 4)
        return sim, a, b, c, (M, N, K)

    def test_3loop_flop_count_exact(self):
        """Sampled trace must account every MAC of the GEMM."""
        sim, a, b, c, (M, N, K) = self._sim(rvv_gem5(512))
        trace_gemm_3loop(sim, M, N, K, a.base, b.base, c.base)
        assert sim.stats.flops == pytest.approx(2 * M * N * K, rel=1e-6)

    def test_6loop_flop_count_exact(self):
        sim, a, b, c, (M, N, K) = self._sim(sve_gem5(512))
        trace_gemm_6loop(sim, M, N, K, a.base, b.base, c.base)
        assert sim.stats.flops == pytest.approx(2 * M * N * K, rel=1e-6)

    def test_naive_flop_count_exact(self):
        sim, a, b, c, (M, N, K) = self._sim(rvv_gem5(512), M=8, N=64, K=8)
        trace_gemm_naive(sim, M, N, K, a.base, b.base, c.base)
        assert sim.stats.flops == pytest.approx(2 * M * N * K, rel=1e-6)

    def test_naive_has_no_vector_instructions(self):
        sim, a, b, c, (M, N, K) = self._sim(rvv_gem5(512), M=4, N=32, K=4)
        trace_gemm_naive(sim, M, N, K, a.base, b.base, c.base)
        assert sim.stats.vec_instrs == 0

    def test_avg_vlen_tracks_hardware_vlen(self):
        """Table III: consumed average VL is near the hardware VL when N
        divides cleanly, lower when tails dominate."""
        sim, a, b, c, (M, N, K) = self._sim(rvv_gem5(16384), N=1024)
        trace_gemm_3loop(sim, M, N, K, a.base, b.base, c.base)
        assert sim.stats.avg_vlen_elems == pytest.approx(512, rel=0.05)

    def test_avg_vlen_with_tail(self):
        sim, a, b, c, (M, N, K) = self._sim(rvv_gem5(16384), N=600)
        trace_gemm_3loop(sim, M, N, K, a.base, b.base, c.base)
        # Two j-blocks of 512 and 88 elements -> average 300.
        assert 250 <= sim.stats.avg_vlen_elems < 512

    def test_rvv_vector_traffic_bypasses_l1(self):
        sim, a, b, c, (M, N, K) = self._sim(rvv_gem5(512))
        trace_gemm_3loop(sim, M, N, K, a.base, b.base, c.base)
        # Only the scalar A-operand loads touch the L1.
        assert sim.stats.l2_accesses > 0
        assert sim.hierarchy.l1.accesses < sim.hierarchy.l2.accesses

    def test_spill_traffic_charged_for_unroll32(self):
        sim, a, b, c, (M, N, K) = self._sim(rvv_gem5(512))
        trace_gemm_3loop(sim, M, N, K, a.base, b.base, c.base, unroll=32)
        assert sim.stats.spills > 0

    def test_unroll32_slower_than_16_rvv(self):
        """Section VI-A: unroll 32 loses ~15% to register spilling."""

        def cycles(unroll):
            # Non-power-of-two N: a power-of-two row stride would add L2
            # conflict thrashing unrelated to register pressure.
            sim, a, b, c, (M, N, K) = self._sim(rvv_gem5(512), M=64, N=2056, K=128)
            trace_gemm_3loop(sim, M, N, K, a.base, b.base, c.base, unroll=unroll)
            return sim.stats.cycles

        c16, c32 = cycles(16), cycles(32)
        assert c32 > c16
        assert c32 / c16 < 1.6  # slower, but not catastrophically

    def test_6loop_prefetches_only_where_supported(self):
        for machine, expect in [(a64fx(), True), (rvv_gem5(512), False)]:
            sim, a, b, c, (M, N, K) = self._sim(machine)
            trace_gemm_6loop(sim, M, N, K, a.base, b.base, c.base)
            assert (sim.stats.sw_prefetches > 0) == expect

    def test_a64fx_6loop_beats_3loop(self):
        """Section VI-C: BLIS-like 6-loop ~2x on A64FX."""
        M, N, K = 256, 5776, 1152

        def cycles(tracer):
            sim = TraceSimulator(a64fx())
            a = sim.alloc("A", M * K * 4)
            b = sim.alloc("B", K * N * 4)
            c = sim.alloc("C", M * N * 4)
            tracer(sim, M, N, K, a.base, b.base, c.base)
            return sim.stats.cycles

        ratio = cycles(trace_gemm_6loop) / cycles(trace_gemm_3loop)
        assert ratio < 0.85  # clearly faster

    def test_rvv_6loop_does_not_beat_3loop(self):
        """Table II: BLIS-like optimizations do not pay on RVV."""
        # Non-power-of-two N, as in YOLOv3's layers: a power-of-two row
        # stride would add L2 conflict thrashing that packing avoids.
        M, N, K = 64, 7776, 288

        def cycles(tracer):
            sim = TraceSimulator(rvv_gem5(512))
            a = sim.alloc("A", M * K * 4)
            b = sim.alloc("B", K * N * 4)
            c = sim.alloc("C", M * N * 4)
            tracer(sim, M, N, K, a.base, b.base, c.base)
            return sim.stats.cycles

        ratio = cycles(trace_gemm_6loop) / cycles(trace_gemm_3loop)
        assert ratio > 0.98

    def test_naive_much_slower_than_3loop(self):
        M, N, K = 16, 2048, 64

        def cycles(tracer):
            sim = TraceSimulator(rvv_gem5(512))
            a = sim.alloc("A", M * K * 4)
            b = sim.alloc("B", K * N * 4)
            c = sim.alloc("C", M * N * 4)
            tracer(sim, M, N, K, a.base, b.base, c.base)
            return sim.stats.cycles

        assert cycles(trace_gemm_naive) / cycles(trace_gemm_3loop) > 5
