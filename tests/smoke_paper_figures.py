#!/usr/bin/env python
"""Paper-figures smoke: replay every pricing axis from the committed trace.

The repo commits one compressed yolov3-tiny capture
(``tests/data/traces/yolov3_tiny_rvv_v512.rtz``, rvv vlen=512, first
12 layers — enough to exercise every event class while keeping the
smoke well under its 60 s budget) whose key deliberately excludes
every pricing-only machine field.  This script proves the committed artifact is sufficient to
drive the paper's figure axes without running a single kernel:

1. decode the container (sha256 content digest verified on load) and
   assert its header key still matches the runtime ``trace_key`` — a
   mismatch means the trace format or keying changed and the artifact
   must be regenerated (instructions printed);
2. seed the in-process registry and sweep four figure axes — L2 size
   (Fig. 7), DRAM latency, DRAM bandwidth, lane count (Sec. VI-B) —
   asserting every point replays (``sources == ["replayed"] * n``);
3. bitwise-compare one point per axis against a direct, trace-off
   simulation (``float.hex`` equality on every ``SimStats`` field).

Vector-length axes (Figs. 6/8) change the event stream itself, so each
VL point replays from its own capture rather than from the committed
one (see docs/TRACE_REPLAY.md).  Step 4 drives them anyway: a cold VL
sweep (one capture per VL, the 512-bit point replaying from the
committed trace) followed by a warm re-run with the process-local
registry and pass memo cleared, asserting every warm point is served
from the persistent compiled-pass cache (``.rpp``/``.rvp``) with zero
trace-column decodes — bitwise identical to the cold run.

Deliberately not named ``test_*.py``: pytest must not collect it.  CI
runs it directly (``python tests/smoke_paper_figures.py``); it prints
one machine-parseable ``BENCH`` line and exits 0 on success.
"""

import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import (  # noqa: E402
    sweep, sweep_cache_sizes, sweep_lanes, sweep_vector_lengths,
    tracecache as tc,
)
from repro.machine import rvv_gem5  # noqa: E402
from repro.machine.simulator import SimStats  # noqa: E402
from repro.nets import KernelPolicy  # noqa: E402
from repro.nets.zoo import yolov3_tiny  # noqa: E402

TRACE_PATH = os.path.join(
    os.path.dirname(__file__), "data", "traces", "yolov3_tiny_rvv_v512.rtz"
)
N_LAYERS = 12

REGEN_HINT = """\
The committed reference trace is stale (trace format or keying changed).
Regenerate it:

    PYTHONPATH=src python - <<'PY'
    from repro.core import tracecache as tc
    from repro.machine import rvv_gem5
    from repro.nets import KernelPolicy
    from repro.nets.zoo import yolov3_tiny
    net = yolov3_tiny()
    m = rvv_gem5(vlen_bits=512, lanes=4, l2_mb=1)
    key = tc.trace_key(net, m, KernelPolicy(), 12)
    tc.save_compressed(
        net.record_trace(m, KernelPolicy(), n_layers=12, key=key),
        "tests/data/traces/yolov3_tiny_rvv_v512.rtz",
    )
    PY

and commit the new file.
"""


def base_machine(**overrides):
    cfg = {"vlen_bits": 512, "lanes": 4, "l2_mb": 1}
    cfg.update(overrides)
    return rvv_gem5(**cfg)


def assert_bitwise(a: SimStats, b: SimStats, what: str):
    for name in SimStats.FIELDS:
        ah, bh = getattr(a, name).hex(), getattr(b, name).hex()
        if ah != bh:
            raise SystemExit(f"{what}: field {name} drifted: {ah} != {bh}")
    if a.kernel_cycles != b.kernel_cycles:
        raise SystemExit(f"{what}: kernel_cycles drifted")


VL_AXIS = [256, 512, 1024]


def vl_axis_phase(net, policy, runtime_key, trace):
    """Figs. 6/8: drive the vector-length axis through the VL path.

    Cold sweep captures one trace per VL (the 512-bit point replays
    from the committed capture seeded into the registry), with the
    compiled-pass cache persisting ``.rpp``/``.rvp`` artifacts to a
    scratch trace dir.  The warm re-run starts from a cleared registry
    and pass memo, so every point must come back off those artifacts:
    all sources ``replayed``, at least one compiled-pass hit per VL,
    zero trace-column decodes, and bitwise-identical stats.
    """
    from repro.machine import replay

    env_keys = ("REPRO_TRACE_DIR", "REPRO_TRACE_SPILL", "REPRO_PASS_CACHE")
    saved = {k: os.environ.get(k) for k in env_keys}
    timings = {}
    with tempfile.TemporaryDirectory(prefix="figures-vl-") as tmp:
        os.environ["REPRO_TRACE_DIR"] = tmp
        os.environ["REPRO_TRACE_SPILL"] = "1"
        os.environ["REPRO_PASS_CACHE"] = "1"
        try:
            tc.clear_registry()
            replay._SHARED_PASS_MEMO.clear()
            tc.put(runtime_key, trace, spill=True)

            def run():
                return sweep_vector_lengths(
                    net, VL_AXIS, lambda v: base_machine(vlen_bits=v),
                    policy, n_layers=N_LAYERS, use_cache=False,
                )

            t0 = time.perf_counter()
            cold = run()
            timings["cold_s"] = round(time.perf_counter() - t0, 3)
            if cold.sources[VL_AXIS.index(512)] != "replayed":
                raise SystemExit(
                    "VL axis: the 512-bit point should have replayed from "
                    f"the committed capture, got sources={cold.sources}"
                )

            # Forget everything this process learned; the warm sweep may
            # only use what the cold one persisted to disk.
            tc.clear_registry()
            replay._SHARED_PASS_MEMO.clear()
            tc.reset_load_counts()
            t0 = time.perf_counter()
            warm = run()
            timings["warm_s"] = round(time.perf_counter() - t0, 3)
            if warm.sources != ["replayed"] * len(VL_AXIS):
                raise SystemExit(
                    f"VL axis warm: expected every point replayed, got "
                    f"sources={warm.sources}"
                )
            counts = tc.load_counts()
            hits = (counts["vecprog"] + counts["pass_spill"]
                    + counts["pass_shm"])
            if hits < len(VL_AXIS):
                raise SystemExit(
                    f"VL axis warm: expected >= {len(VL_AXIS)} compiled-"
                    f"pass cache hits, load counts were {counts}"
                )
            if counts["shm"] or counts["spill"]:
                raise SystemExit(
                    f"VL axis warm: replays should skip the event walk "
                    f"entirely, but {counts['shm'] + counts['spill']} "
                    f"trace streams were decoded"
                )
            for v, a, b in zip(VL_AXIS, cold.stats, warm.stats):
                assert_bitwise(a, b, f"VL axis vlen={v} warm-vs-cold")
            timings["compiled_pass_hits"] = hits
        finally:
            for k, v in saved.items():
                if v is None:
                    os.environ.pop(k, None)
                else:
                    os.environ[k] = v
            tc.clear_registry()
            replay._SHARED_PASS_MEMO.clear()
    return timings


def main() -> int:
    t_start = time.perf_counter()
    net = yolov3_tiny()
    policy = KernelPolicy()
    runtime_key = tc.trace_key(net, base_machine(), policy, N_LAYERS)

    header = tc.read_header(TRACE_PATH)
    if header["key"] != runtime_key:
        sys.stderr.write(REGEN_HINT)
        sys.stderr.write(
            f"\ncommitted key: {header['key']}\nruntime key  : {runtime_key}\n"
        )
        return 2

    t0 = time.perf_counter()
    trace = tc.load_compressed(TRACE_PATH)  # digest-verified
    t_decode = time.perf_counter() - t0
    tc.clear_registry()
    tc.put(runtime_key, trace, spill=False)

    axes = {
        "l2_mb": lambda: sweep_cache_sizes(
            net, [1, 4, 16, 64], lambda mb: base_machine(l2_mb=mb), policy,
            n_layers=N_LAYERS,
        ),
        "dram_latency": lambda: sweep(
            net, "dram_latency", [100, 200, 400],
            lambda v: base_machine().with_(dram_latency=v), policy,
            n_layers=N_LAYERS,
        ),
        "dram_bytes_per_cycle": lambda: sweep(
            net, "dram_bytes_per_cycle", [8, 16, 32],
            lambda v: base_machine().with_(dram_bytes_per_cycle=v), policy,
            n_layers=N_LAYERS,
        ),
        "lanes": lambda: sweep_lanes(
            net, [2, 4, 8], lambda l: base_machine(lanes=l), policy,
            n_layers=N_LAYERS,
        ),
    }

    axis_s = {}
    results = {}
    for name, run in axes.items():
        t0 = time.perf_counter()
        res = run()
        axis_s[name] = round(time.perf_counter() - t0, 3)
        if res.sources != ["replayed"] * len(res.axis):
            raise SystemExit(
                f"axis {name}: expected every point replayed from the "
                f"committed capture, got sources={res.sources}"
            )
        results[name] = res

    # One direct (kernels actually run, trace off) point per axis.
    spot = {
        "l2_mb": (1, base_machine(l2_mb=4)),
        "dram_latency": (1, base_machine().with_(dram_latency=200)),
        "dram_bytes_per_cycle": (2, base_machine().with_(
            dram_bytes_per_cycle=32
        )),
        "lanes": (2, base_machine(lanes=8)),
    }
    for name, (idx, m) in spot.items():
        direct = sweep(
            net, "spot", [0], lambda _: m, policy, n_layers=N_LAYERS,
            use_trace=False,
        )
        assert direct.sources == ["direct"]
        assert_bitwise(
            direct.stats[0], results[name].stats[idx], f"axis {name}"
        )

    vl_axis = vl_axis_phase(net, policy, runtime_key, trace)

    elapsed = round(time.perf_counter() - t_start, 3)
    row = {
        "bench": "paper_figures_smoke",
        "trace_bytes": os.path.getsize(TRACE_PATH),
        "n_events": trace.n_events,
        "decode_s": round(t_decode, 3),
        "axis_s": axis_s,
        "vl_axis": vl_axis,
        "points_replayed": sum(len(r.axis) for r in results.values())
        + len(VL_AXIS),
        "total_s": elapsed,
    }
    print("BENCH " + json.dumps(row, sort_keys=True))
    print(f"paper-figures smoke OK in {elapsed}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
