"""Persistent compiled-pass cache: exact codecs, staleness, warm sweeps.

The ``.rpp`` (shared pass) and ``.rvp`` (compiled point-pass tier)
containers exist so a warm re-run of a figure sweep skips the event
walk entirely.  Correctness is the same bitwise bar as the rest of the
replay engine: everything that crosses the wire must round-trip
type-exactly (``float.hex`` equal, ints as ints, bools as bools), a
digest mismatch must read as a miss (never a wrong answer), corruption
must quarantine, and a warm sweep must price bitwise identically to
its cold capture run — serial and parallel, spill on or off.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import tracecache as tc
from repro.core.codesign import sweep_vector_lengths
from repro.machine import rvv_gem5
from repro.machine.replay import (
    _INVARIANT_FIELDS,
    _compile_fast,
    _shared_pass,
    _run_points,
    replay_sweep,
    replay_sweep_cached,
)
from repro.machine.simulator import SimStats
from repro.machine.trace import TraceRecorder
from repro.nets import ConvLayer, KernelPolicy, MaxPoolLayer, Network

COMPAT = {"isa_name": "rvv1.0", "vlen_bits": 512, "l1_line_bytes": 64}


def small_net():
    return Network(
        [ConvLayer(8, 3, 1), MaxPoolLayer(2, 2), ConvLayer(16, 3, 1)],
        input_shape=(4, 32, 32),
        name="small",
    )


def eq_item(x, y):
    """Type-exact equality: float bits, tuple shape, int/bool identity."""
    if type(x) is float:
        return type(y) is float and x.hex() == y.hex()
    if not (isinstance(x, tuple) and isinstance(y, tuple)):
        return type(x) is type(y) and x == y
    return len(x) == len(y) and all(eq_item(a, b) for a, b in zip(x, y))


def hexs(stats: SimStats):
    fields = tuple(getattr(stats, f).hex() for f in SimStats.FIELDS)
    kc = tuple(sorted((k, v.hex()) for k, v in stats.kernel_cycles.items()))
    return fields, kc


# ----------------------------------------------------------------------
# Property-based codec round-trip over the full prog-item grammar
# ----------------------------------------------------------------------
finite = st.floats(allow_nan=False, allow_infinity=False)
posint = st.integers(min_value=0, max_value=2**40)
addrs = st.lists(posint, min_size=0, max_size=4).map(tuple)

item = st.one_of(
    finite,
    st.tuples(st.just(1), st.text(max_size=6)),
    st.tuples(st.just(2), posint, posint),
    st.builds(
        lambda w, a, lat, occ, nb, nl, wr, un, iid, nh, ft:
            (3, w, a, lat, occ, nb, nl, wr, un, iid, nh, ft),
        finite, addrs, posint, finite, posint,
        st.integers(min_value=0, max_value=64), st.booleans(), st.booleans(),
        posint, st.integers(min_value=0, max_value=64), addrs,
    ),
    st.builds(
        lambda w, a, lat, occ, wr, nh, ft: (4, w, a, lat, occ, wr, nh, ft),
        finite, addrs, posint, finite, st.booleans(),
        st.integers(min_value=0, max_value=64), addrs,
    ),
    st.tuples(st.just(5), addrs),
    st.tuples(st.just(6), finite, st.integers(min_value=0, max_value=7)),
)

CLASSES = [
    ("a", 64, 2, 4),
    ("b", 3),
    ("m", 12, 0.5, 256, 4, True, False),
    ("m", 40, 1.25, 64, 1, False, True),
]


def make_gc(distinct):
    return {
        "vpu": None,
        "port_l1": True,
        "l1_lat": 4,
        "ooo_hide": 0.5,
        "scalar_cpi": 1.0,
        "l2_shift": 6,
        "distinct": set(distinct),
        "max_range_total": 1 << 20,
        "has_fills": False,
        "pf2_cfg": False,
        "classes": list(CLASSES),
    }


class TestCodecRoundTrip:
    @given(st.lists(item, max_size=40), st.lists(posint, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_pass_roundtrip_any_program(self, prog, distinct):
        gc = make_gc(distinct)
        inv = {f: float(i) * 1.5 for i, f in enumerate(_INVARIANT_FIELDS)}
        blob = tc.encode_pass(
            prog, inv, gc, key="k", sig="s" * 12, defer=True,
            trace_sha256="t" * 64, compat=COMPAT,
        )
        header, prog2, inv2, gc2 = tc.decode_pass(blob)
        assert len(prog) == len(prog2)
        for x, y in zip(prog, prog2):
            assert eq_item(x, y), (x, y)
        for f in _INVARIANT_FIELDS:
            assert inv[f].hex() == inv2[f].hex()
        assert gc2["vpu"] is None
        assert gc2["distinct"] == gc["distinct"]
        for a, b in zip(gc["classes"], gc2["classes"]):
            assert eq_item(a, b)
        assert header["trace_sha256"] == "t" * 64
        assert header["compat"] == COMPAT

    def test_unknown_tag_raises(self):
        with pytest.raises(ValueError, match="tag"):
            tc.encode_pass(
                [(9, 1.0)], {}, make_gc([]), key="k", sig="s", defer=False,
                trace_sha256="t" * 64, compat=COMPAT,
            )

    def test_non_integral_operand_raises(self):
        # A half-integer byte count must refuse to encode, not silently
        # truncate through an int64 column.
        with pytest.raises(ValueError):
            tc.encode_pass(
                [(2, 100, 2.5)], {}, make_gc([]), key="k", sig="s",
                defer=False, trace_sha256="t" * 64, compat=COMPAT,
            )

    @pytest.mark.parametrize("mutate", [
        pytest.param(lambda b: b"XXXX" + b[4:], id="bad-magic"),
        pytest.param(lambda b: b[:-3], id="truncated"),
        pytest.param(lambda b: b + b"\0\0", id="trailing"),
        pytest.param(
            lambda b: b[:-5] + bytes([b[-5] ^ 0xFF]) + b[-4:], id="bitflip"
        ),
    ])
    def test_corruption_raises(self, mutate):
        blob = tc.encode_pass(
            [1.0, (2, 64, 128), (6, 2.0, 1)], {"flops": 1.0}, make_gc([1, 2]),
            key="k", sig="s" * 12, defer=True, trace_sha256="t" * 64,
            compat=COMPAT,
        )
        with pytest.raises(ValueError):
            tc.decode_pass(mutate(blob))


# ----------------------------------------------------------------------
# Store/load against a real shared pass
# ----------------------------------------------------------------------
@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_SIMCACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_TRACE_SPILL", "1")
    monkeypatch.setenv("REPRO_PASS_CACHE", "1")
    tc.clear_registry()
    from repro.machine import replay

    replay._SHARED_PASS_MEMO.clear()
    yield tmp_path
    tc.clear_registry()
    replay._SHARED_PASS_MEMO.clear()


def shared_pass_fixture():
    m = rvv_gem5(vlen_bits=512, lanes=4, l2_mb=1)
    rec = TraceRecorder(m)
    small_net()._emit_trace(rec, KernelPolicy(), None, True)
    trace = rec.finish(key="passchk")
    prog, inv, gc = _shared_pass(trace, m, defer_vpu=True)
    inv_fields = {f: getattr(inv, f) for f in _INVARIANT_FIELDS}
    return m, trace, prog, inv_fields, gc


class TestStoreLoad:
    def test_roundtrip_and_digest_staleness(self, cache_dir):
        m, trace, prog, inv_fields, gc = shared_pass_fixture()
        digest = trace.content_digest()
        assert tc.store_pass(
            prog, inv_fields, gc, key="k1", sig="s" * 12, defer=True,
            trace_sha256=digest, compat=COMPAT,
        )
        out = tc.load_pass("k1", "s" * 12, digest)
        assert out is not None
        _, prog2, inv2, gc2 = out
        for x, y in zip(prog, prog2):
            assert eq_item(x, y)
        for f in _INVARIANT_FIELDS:
            assert inv_fields[f].hex() == inv2[f].hex()
        # A different trace digest is a stale derivative: miss, and the
        # file survives (the next store overwrites it).
        assert tc.load_pass("k1", "s" * 12, "f" * 64) is None
        assert os.path.exists(tc._pass_path("k1", "s" * 12))

    def test_corrupt_pass_is_quarantined(self, cache_dir):
        m, trace, prog, inv_fields, gc = shared_pass_fixture()
        digest = trace.content_digest()
        tc.store_pass(
            prog, inv_fields, gc, key="k2", sig="s" * 12, defer=True,
            trace_sha256=digest, compat=COMPAT,
        )
        path = tc._pass_path("k2", "s" * 12)
        blob = bytearray(open(path, "rb").read())
        blob[-10] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        assert tc.load_pass("k2", "s" * 12, digest) is None
        assert not os.path.exists(path)  # moved aside, never served twice
        qdir = os.path.join(str(cache_dir), "quarantine")
        assert os.path.isdir(qdir) and os.listdir(qdir)

    def test_vecprog_roundtrip(self, cache_dir):
        m, trace, prog, inv_fields, gc = shared_pass_fixture()
        digest = trace.content_digest()
        cols = _compile_fast(prog, gc, None)
        cols_dict = {s: getattr(cols, s) for s in cols.__slots__}
        tier = {"kind": "fast", "token": "f" * 12, "desc": "fast:None",
                "fps": ["fp1"]}
        assert tc.store_vecprog(
            cols_dict, inv_fields, gc, key="k3", sig="s" * 12, tier=tier,
            trace_sha256=digest, compat=COMPAT,
        )
        out = tc.load_vecprog("k3", "s" * 12, "f" * 12, digest)
        assert out is not None
        header, cols2, inv2, gcp = out
        assert header["tier"]["fps"] == ["fp1"]
        assert (cols2["base"] == cols.base).all()
        assert cols2["labels"] == cols.labels
        for a, b in zip(cols.cls_defs, cols2["cls_defs"]):
            assert eq_item(a, b)
        assert {"l1_lat", "ooo_hide", "scalar_cpi", "classes"} <= set(gcp)
        assert tc.load_vecprog("k3", "s" * 12, "f" * 12, "f" * 64) is None


# ----------------------------------------------------------------------
# Memo keying on trace content, not just the registry key
# ----------------------------------------------------------------------
class TestMemoDigestKeying:
    def test_recaptured_trace_never_served_stale(self, cache_dir):
        """Two different event streams under one key must price as
        themselves — the memo keys on the content digest, so a
        re-captured (changed) trace cannot inherit the old pass."""
        m = rvv_gem5(vlen_bits=512, lanes=4, l2_mb=1)

        def record(net):
            rec = TraceRecorder(m)
            net._emit_trace(rec, KernelPolicy(), None, True)
            return rec.finish(key="samekey")

        net_a = small_net()
        net_b = Network(
            [ConvLayer(8, 3, 1), ConvLayer(8, 1, 1)],
            input_shape=(4, 32, 32),
            name="other",
        )
        tr_a, tr_b = record(net_a), record(net_b)
        assert tr_a.content_digest() != tr_b.content_digest()
        got_a = replay_sweep(tr_a, [m])[0]
        got_b = replay_sweep(tr_b, [m])[0]
        want_a = _run_points(*_shared_pass(tr_a, m, defer_vpu=True), [m])[0]
        want_b = _run_points(*_shared_pass(tr_b, m, defer_vpu=True), [m])[0]
        assert hexs(got_a) == hexs(want_a)
        assert hexs(got_b) == hexs(want_b)
        assert hexs(got_a) != hexs(got_b)


# ----------------------------------------------------------------------
# Warm figure sweeps: bitwise identity, serial and parallel
# ----------------------------------------------------------------------
VLENS = [256, 512, 1024]


def run_vl_sweep(jobs=1):
    return sweep_vector_lengths(
        small_net(), VLENS,
        lambda v: rvv_gem5(vlen_bits=v, lanes=4, l2_mb=1),
        jobs=jobs, use_cache=False,
    )


def reset_process_state():
    from repro.machine import replay

    tc.clear_registry()
    replay._SHARED_PASS_MEMO.clear()


class TestWarmSweeps:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_warm_vl_sweep_bitwise_spill_on(self, cache_dir, jobs):
        cold = run_vl_sweep()
        reset_process_state()
        tc.reset_load_counts()
        warm = run_vl_sweep(jobs=jobs)
        for a, b in zip(cold.stats, warm.stats):
            assert hexs(a) == hexs(b)
        if jobs == 1:
            assert warm.sources == ["replayed"] * len(VLENS)
            counts = tc.load_counts()
            hits = (counts["vecprog"] + counts["pass_spill"]
                    + counts["pass_shm"])
            assert hits >= len(VLENS)
            # The whole warm sweep ran without one trace-column decode.
            assert counts["shm"] == 0 and counts["spill"] == 0

    def test_warm_vl_sweep_bitwise_spill_off(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_TRACE_SPILL", "0")
        monkeypatch.delenv("REPRO_PASS_CACHE", raising=False)
        reset_process_state()
        assert not tc.pass_cache_enabled()  # defaults to spill_enabled()
        cold = run_vl_sweep()
        warm = run_vl_sweep()  # in-process registry + memo only
        for a, b in zip(cold.stats, warm.stats):
            assert hexs(a) == hexs(b)
        assert not any(
            f.endswith((tc.PASS_SUFFIX, tc.VECPROG_SUFFIX))
            for f in os.listdir(tmp_path)
        )
        reset_process_state()

    def test_cached_entry_miss_returns_none(self, cache_dir):
        m = rvv_gem5(vlen_bits=512, lanes=4, l2_mb=1)
        assert replay_sweep_cached("nonexistent-key", [m]) is None


# ----------------------------------------------------------------------
# CLI gc prunes compiled passes orphaned by a vanished trace
# ----------------------------------------------------------------------
class TestCliGc:
    def test_gc_prunes_orphans_keeps_live(self, cache_dir, capsys):
        from repro.cli import main

        run_vl_sweep()
        reset_process_state()
        names = os.listdir(cache_dir)
        traces = sorted(n for n in names if n.endswith(tc.SPILL_SUFFIX))
        assert len(traces) == len(VLENS)
        assert any(n.endswith(tc.PASS_SUFFIX) for n in names)
        # Orphan one key's compiled passes by removing its trace.
        victim = traces[0][: -len(tc.SPILL_SUFFIX)]
        os.remove(os.path.join(str(cache_dir), traces[0]))
        assert main(["trace-cache", "gc"]) == 0
        capsys.readouterr()
        left = os.listdir(cache_dir)
        assert not any(n.startswith(victim) for n in left)
        for t in traces[1:]:
            survivor = t[: -len(tc.SPILL_SUFFIX)]
            kinds = {n.rsplit(".", 1)[1] for n in left
                     if n.startswith(survivor)}
            assert {"rtz", "rpp", "rvp"} <= kinds
        # The survivors still serve a warm sweep, bitwise.
        warm = run_vl_sweep()
        assert warm.sources.count("replayed") >= len(VLENS) - 1
