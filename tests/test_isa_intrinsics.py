"""Unit + property tests for the functional vector intrinsics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.isa import SVE, whilelt
from repro.isa.intrinsics import (
    vbroadcast,
    vfadd,
    vfmacc,
    vfmacc_vv,
    vfmax,
    vfmul,
    vfsub,
    vgather,
    vle,
    vle_masked,
    vlse,
    vscatter,
    vse,
    vse_masked,
    vsse,
)

f32s = st.floats(-1e3, 1e3, width=32)


def mem(n=64, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n).astype(np.float32)


class TestLoadsStores:
    def test_vle_copies(self):
        m = mem()
        v = vle(m, 4, 8)
        np.testing.assert_array_equal(v, m[4:12])
        v[0] = 99.0
        assert m[4] != 99.0  # register is a copy, not a view

    def test_vse_roundtrip(self):
        m = mem()
        v = vle(m, 0, 16)
        out = np.zeros(64, dtype=np.float32)
        vse(v, out, 8, 16)
        np.testing.assert_array_equal(out[8:24], m[:16])
        assert (out[:8] == 0).all() and (out[24:] == 0).all()

    def test_vse_partial_gvl(self):
        m = mem()
        v = vle(m, 0, 16)
        out = np.zeros(16, dtype=np.float32)
        vse(v, out, 0, 5)
        np.testing.assert_array_equal(out[:5], m[:5])
        assert (out[5:] == 0).all()

    def test_vlse_strided(self):
        m = np.arange(32, dtype=np.float32)
        v = vlse(m, 1, 3, 5)
        np.testing.assert_array_equal(v, [1, 4, 7, 10, 13])

    def test_vlse_zero_stride_broadcasts(self):
        m = np.arange(8, dtype=np.float32)
        v = vlse(m, 3, 0, 4)
        np.testing.assert_array_equal(v, [3, 3, 3, 3])

    def test_vsse_strided(self):
        out = np.zeros(12, dtype=np.float32)
        vsse(np.array([1, 2, 3], dtype=np.float32), out, 1, 4, 3)
        np.testing.assert_array_equal(out[[1, 5, 9]], [1, 2, 3])

    def test_gather_scatter_roundtrip(self):
        m = mem(32)
        idx = np.array([5, 1, 30, 2], dtype=np.int64)
        g = vgather(m, idx)
        np.testing.assert_array_equal(g, m[idx])
        out = np.zeros(32, dtype=np.float32)
        vscatter(g, out, idx)
        np.testing.assert_array_equal(out[idx], m[idx])

    def test_negative_gvl_rejected(self):
        with pytest.raises(ValueError):
            vle(mem(), 0, -1)


class TestMaskedOps:
    def test_masked_load_tail(self):
        isa = SVE(512)
        m = np.arange(20, dtype=np.float32)
        pred = whilelt(isa, 16, 20)  # 4 active lanes
        v = vle_masked(m, 16, pred)
        np.testing.assert_array_equal(v[:4], m[16:20])
        assert (v[4:] == 0).all()

    def test_masked_store_leaves_inactive(self):
        isa = SVE(512)
        out = np.full(32, -1.0, dtype=np.float32)
        pred = whilelt(isa, 0, 3)
        vse_masked(np.arange(16, dtype=np.float32), out, 0, pred)
        np.testing.assert_array_equal(out[:3], [0, 1, 2])
        assert (out[3:] == -1).all()

    def test_masked_load_general_mask(self):
        m = np.arange(32, dtype=np.float32)
        pred = np.zeros(16, dtype=bool)
        pred[[1, 7, 13]] = True
        v = vle_masked(m, 0, pred, fill=-5.0)
        assert v[1] == 1 and v[7] == 7 and v[13] == 13
        assert v[0] == -5.0


class TestArithmetic:
    def test_vbroadcast(self):
        v = vbroadcast(2.5, 8)
        assert v.dtype == np.float32
        np.testing.assert_array_equal(v, np.full(8, 2.5, dtype=np.float32))

    def test_vfmacc_matches_numpy(self):
        acc = np.ones(8, dtype=np.float32)
        b = np.arange(8, dtype=np.float32)
        vfmacc(acc, 2.0, b, 8)
        np.testing.assert_allclose(acc, 1.0 + 2.0 * np.arange(8))

    def test_vfmacc_respects_gvl(self):
        acc = np.zeros(8, dtype=np.float32)
        vfmacc(acc, 1.0, np.ones(8, dtype=np.float32), 3)
        np.testing.assert_array_equal(acc, [1, 1, 1, 0, 0, 0, 0, 0])

    def test_vfmacc_vv(self):
        acc = np.zeros(4, dtype=np.float32)
        vfmacc_vv(acc, np.array([1, 2, 3, 4.0], np.float32),
                  np.array([5, 6, 7, 8.0], np.float32), 4)
        np.testing.assert_array_equal(acc, [5, 12, 21, 32])

    @given(
        a=arrays(np.float32, 16, elements=f32s),
        b=arrays(np.float32, 16, elements=f32s),
        gvl=st.integers(0, 16),
    )
    def test_elementwise_ops_match_numpy(self, a, b, gvl):
        np.testing.assert_array_equal(vfadd(a, b, gvl), a[:gvl] + b[:gvl])
        np.testing.assert_array_equal(vfsub(a, b, gvl), a[:gvl] - b[:gvl])
        np.testing.assert_array_equal(vfmul(a, b, gvl), a[:gvl] * b[:gvl])
        np.testing.assert_array_equal(vfmax(a, b, gvl), np.maximum(a[:gvl], b[:gvl]))

    @given(a=arrays(np.float32, 8, elements=f32s), s=f32s, gvl=st.integers(0, 8))
    def test_scalar_variants(self, a, s, gvl):
        np.testing.assert_array_equal(vfmul(a, s, gvl), a[:gvl] * np.float32(s))
        np.testing.assert_array_equal(vfmax(a, 0.0, gvl), np.maximum(a[:gvl], 0.0))

    @given(
        acc0=arrays(np.float32, 32, elements=f32s),
        vec=arrays(np.float32, 32, elements=f32s),
        scalar=f32s,
    )
    def test_vfmacc_property(self, acc0, vec, scalar):
        acc = acc0.copy()
        vfmacc(acc, scalar, vec, 32)
        np.testing.assert_allclose(acc, acc0 + np.float32(scalar) * vec, rtol=1e-5, atol=1e-4)
