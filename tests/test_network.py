"""Tests for Network: shape propagation, forward, timing simulation."""

import numpy as np
import pytest

from repro.machine import rvv_gem5, sve_gem5
from repro.nets import (
    ConvLayer,
    KernelPolicy,
    MaxPoolLayer,
    Network,
    RouteLayer,
    ShortcutLayer,
    UpsampleLayer,
    build_network,
    parse_cfg,
)


def tiny_net():
    return Network(
        [
            ConvLayer(4, 3, 1),
            ConvLayer(8, 3, 2),
            ConvLayer(4, 1, 1, pad=0),
            ConvLayer(8, 3, 1),
            ShortcutLayer(-3),
            MaxPoolLayer(2, 2),
        ],
        input_shape=(3, 16, 16),
        name="tiny",
    )


class TestShapes:
    def test_propagation(self):
        net = tiny_net()
        assert net.shapes() == [
            (4, 16, 16),
            (8, 8, 8),
            (4, 8, 8),
            (8, 8, 8),
            (8, 8, 8),
            (8, 4, 4),
        ]

    def test_in_shape_of(self):
        net = tiny_net()
        assert net.in_shape_of(0) == (3, 16, 16)
        assert net.in_shape_of(2) == (8, 8, 8)

    def test_route_shapes(self):
        net = Network(
            [
                ConvLayer(4, 3, 1),
                ConvLayer(8, 3, 2),
                UpsampleLayer(2),
                RouteLayer([-1, 0]),
            ],
            input_shape=(3, 8, 8),
        )
        assert net.shapes()[-1] == (12, 8, 8)

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            Network([], (3, 8, 8))

    def test_conv_layers_inventory(self):
        assert len(tiny_net().conv_layers()) == 4

    def test_describe(self):
        d = tiny_net().describe()
        assert "conv" in d and "maxpool" in d


class TestForward:
    def test_runs_and_shapes(self):
        net = tiny_net()
        x = np.random.default_rng(0).standard_normal((3, 16, 16)).astype(np.float32)
        out = net.forward(x)
        assert out.shape == (8, 4, 4)
        assert np.isfinite(out).all()

    def test_shortcut_needs_matching_channels(self):
        net = tiny_net()
        x = np.zeros((3, 16, 16), dtype=np.float32)
        out = net.forward(x)  # shapes line up by construction
        assert out.shape == (8, 4, 4)

    def test_wrong_input_shape(self):
        with pytest.raises(ValueError):
            tiny_net().forward(np.zeros((3, 8, 8), dtype=np.float32))

    def test_n_layers_prefix(self):
        net = tiny_net()
        x = np.zeros((3, 16, 16), dtype=np.float32)
        out = net.forward(x, n_layers=2)
        assert out.shape == (8, 8, 8)

    def test_winograd_policy_matches_gemm_policy(self):
        net = Network(
            [ConvLayer(4, 3, 1), ConvLayer(6, 3, 1)], input_shape=(3, 12, 12)
        )
        x = np.random.default_rng(1).standard_normal((3, 12, 12)).astype(np.float32)
        a = net.forward(x, KernelPolicy(winograd="off"))
        b = net.forward(x, KernelPolicy(winograd="stride1"))
        np.testing.assert_allclose(a, b, rtol=5e-3, atol=5e-3)


class TestSimulate:
    def test_basic(self):
        st = tiny_net().simulate(rvv_gem5(512))
        assert st.cycles > 0
        assert st.kernel_cycles.get("gemm", 0) > 0

    def test_dedup_matches_full(self):
        """Weighted dedup must closely track the full simulation."""
        net = Network(
            [ConvLayer(8, 3, 1) for _ in range(6)], input_shape=(8, 16, 16)
        )
        full = net.simulate(sve_gem5(512), deduplicate=False)
        dedup = net.simulate(sve_gem5(512), deduplicate=True)
        assert dedup.cycles == pytest.approx(full.cycles, rel=0.1)

    def test_n_layers_cheaper(self):
        net = tiny_net()
        part = net.simulate(rvv_gem5(512), n_layers=2)
        full = net.simulate(rvv_gem5(512))
        assert part.cycles < full.cycles

    def test_longer_vectors_fewer_instructions(self):
        net = tiny_net()
        short = net.simulate(rvv_gem5(512))
        long_ = net.simulate(rvv_gem5(4096))
        assert long_.vec_instrs < short.vec_instrs

    def test_winograd_policy_traces_winograd(self):
        net = Network([ConvLayer(8, 3, 1)], input_shape=(8, 32, 32))
        st = net.simulate(sve_gem5(512), KernelPolicy(winograd="stride1"))
        assert st.kernel_cycles.get("wino_tuple_mult", 0) > 0
        assert st.kernel_cycles.get("gemm", 0) == 0


class TestCfgParser:
    CFG = """
# comment
[net]
height=8
width=8
channels=3

[convolutional]
batch_normalize=1
filters=4
size=3
stride=1
pad=1
activation=leaky

[maxpool]
size=2
stride=2

[connected]
output=10
activation=relu

[softmax]
"""

    def test_parse_sections(self):
        sections = parse_cfg(self.CFG)
        assert [s[0] for s in sections] == [
            "net",
            "convolutional",
            "maxpool",
            "connected",
            "softmax",
        ]
        assert sections[1][1]["filters"] == "4"

    def test_build_and_forward(self):
        net = build_network(self.CFG)
        assert net.input_shape == (3, 8, 8)
        out = net.forward(np.zeros((3, 8, 8), dtype=np.float32))
        assert out.shape == (10, 1, 1)

    def test_pad_semantics(self):
        net = build_network(
            "[net]\nheight=8\nwidth=8\nchannels=1\n"
            "[convolutional]\nfilters=2\nsize=3\nstride=1\npad=1\nactivation=linear\n"
        )
        assert net.layers[0].pad == 1  # pad=1 means size//2

    def test_explicit_padding_overrides(self):
        net = build_network(
            "[net]\nheight=8\nwidth=8\nchannels=1\n"
            "[convolutional]\nfilters=2\nsize=5\nstride=1\npadding=0\nactivation=linear\n"
        )
        assert net.layers[0].pad == 0

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            parse_cfg("[net\nheight=1")
        with pytest.raises(ValueError):
            parse_cfg("height=1")
        with pytest.raises(ValueError):
            parse_cfg("[net]\nbogus line")
        with pytest.raises(ValueError):
            build_network("[convolutional]\nfilters=1\n")

    def test_unknown_section(self):
        with pytest.raises(ValueError):
            build_network("[net]\nheight=4\nwidth=4\nchannels=1\n[gru]\n")
