"""Tests for the register-file / spill-detection model (Section VI-A)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import (
    RVV,
    RegisterFile,
    RegisterPressureError,
    estimate_gemm_register_usage,
    spill_traffic_bytes,
)


@pytest.fixture
def rf():
    return RegisterFile(RVV(512))


class TestRegisterFile:
    def test_capacity_is_architectural(self, rf):
        assert rf.capacity == 32

    def test_alloc_free_cycle(self, rf):
        rf.alloc("v0")
        assert rf.peak_live == 1
        rf.free("v0")
        assert len(rf.live) == 0

    def test_refcounting(self, rf):
        rf.alloc("acc")
        rf.alloc("acc")
        rf.free("acc")
        assert "acc" in rf.live
        rf.free("acc")
        assert "acc" not in rf.live

    def test_free_unknown_raises(self, rf):
        with pytest.raises(KeyError):
            rf.free("ghost")

    def test_spill_detection(self, rf):
        for i in range(33):
            rf.alloc(f"v{i}")
        assert rf.spills == 1
        assert rf.would_spill
        assert rf.peak_live == 33

    def test_strict_mode_raises(self):
        rf = RegisterFile(RVV(512), strict=True)
        for i in range(32):
            rf.alloc(f"v{i}")
        with pytest.raises(RegisterPressureError):
            rf.alloc("v32")

    def test_free_all(self, rf):
        for i in range(10):
            rf.alloc(f"v{i}")
        rf.free_all()
        assert len(rf.live) == 0 and rf.peak_live == 10

    def test_spill_traffic(self, rf):
        for i in range(34):
            rf.alloc(f"v{i}")
        # two spills -> 2 * (store+reload) * vlen_bytes
        assert spill_traffic_bytes(rf, 64) == 2 * 2 * 64

    @given(n=st.integers(0, 100))
    def test_peak_tracks_maximum(self, n):
        rf = RegisterFile(RVV(512))
        for i in range(n):
            rf.alloc(f"v{i}")
        for i in range(n):
            rf.free(f"v{i}")
        assert rf.peak_live == n
        assert rf.spills == max(0, n - 32)


class TestGemmRegisterEstimate:
    def test_paper_unroll_16_fits(self):
        # Section VI-A: unroll 16 is the sweet spot on RVV.
        assert estimate_gemm_register_usage(16) <= 32

    def test_paper_unroll_32_spills(self):
        # Section VI-A: utilizing 32 registers spills (~15% drop).
        assert estimate_gemm_register_usage(32) > 32

    def test_invalid_unroll(self):
        with pytest.raises(ValueError):
            estimate_gemm_register_usage(0)
