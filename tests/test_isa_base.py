"""Unit tests for repro.isa.base / rvv / sve: VLA length negotiation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import F16, F32, F64, RVV, SVE, is_power_of_two, make_isa, svcntw, vsetvl, whilelt


class TestElementTypes:
    def test_widths(self):
        assert F32.bits == 32 and F32.bytes == 4
        assert F64.bits == 64 and F64.bytes == 8
        assert F16.bits == 16 and F16.bytes == 2

    def test_dtypes(self):
        assert F32.dtype == np.float32
        assert F64.dtype == np.float64


class TestPowerOfTwo:
    @pytest.mark.parametrize("x", [1, 2, 4, 512, 16384])
    def test_true(self, x):
        assert is_power_of_two(x)

    @pytest.mark.parametrize("x", [0, -2, 3, 511, 768])
    def test_false(self, x):
        assert not is_power_of_two(x)


class TestRVV:
    def test_mvl_is_16384(self):
        assert RVV.mvl_bits == 16384

    @pytest.mark.parametrize("vlen", [64, 512, 2048, 16384])
    def test_legal_vlens(self, vlen):
        assert RVV(vlen).vlen_bits == vlen

    @pytest.mark.parametrize("vlen", [0, 96, 32768, 100])
    def test_illegal_vlens(self, vlen):
        with pytest.raises(ValueError):
            RVV(vlen)

    def test_max_elems_f32(self):
        assert RVV(16384).max_elems(F32) == 512
        assert RVV(512).max_elems(F32) == 16

    def test_max_elems_f64(self):
        assert RVV(512).max_elems(F64) == 8

    def test_vsetvl_full_request(self):
        isa = RVV(512)
        assert vsetvl(isa, 1000, F32) == 16

    def test_vsetvl_tail(self):
        isa = RVV(512)
        assert vsetvl(isa, 7, F32) == 7
        assert vsetvl(isa, 0, F32) == 0

    def test_vsetvl_negative_rejected(self):
        with pytest.raises(ValueError):
            vsetvl(RVV(512), -1, F32)

    def test_no_sw_prefetch(self):
        # Section IV-A: RVV does not support prefetching.
        assert not RVV(512).has_sw_prefetch

    def test_no_register_transpose(self):
        # Section VII: no transpose intrinsics on RVV.
        assert not RVV(512).has_register_transpose

    @given(rvl=st.integers(0, 10_000), vlen_exp=st.integers(6, 14))
    def test_grant_never_exceeds_request_or_vlmax(self, rvl, vlen_exp):
        isa = RVV(1 << vlen_exp)
        gvl = isa.grant_vl(rvl, F32)
        assert 0 <= gvl <= min(rvl, isa.max_elems(F32))
        if rvl > 0:
            assert gvl > 0

    @given(rvl=st.integers(1, 10_000))
    def test_strip_mining_consumes_exactly(self, rvl):
        """Repeated vsetvl loops must consume every element exactly once."""
        isa = RVV(2048)
        remaining, steps = rvl, 0
        while remaining:
            gvl = isa.grant_vl(remaining, F32)
            remaining -= gvl
            steps += 1
            assert steps <= rvl  # termination guard
        assert remaining == 0


class TestSVE:
    def test_mvl_is_2048(self):
        assert SVE.mvl_bits == 2048

    @pytest.mark.parametrize("vlen", [128, 256, 512, 1024, 2048])
    def test_legal_vlens(self, vlen):
        assert SVE(vlen).vlen_bits == vlen

    @pytest.mark.parametrize("vlen", [64, 100, 4096, 576])
    def test_illegal_vlens(self, vlen):
        with pytest.raises(ValueError):
            SVE(vlen)

    def test_svcntw(self):
        assert svcntw(SVE(512)) == 16
        assert svcntw(SVE(2048)) == 64

    def test_whilelt_full(self):
        p = whilelt(SVE(512), 0, 100)
        assert p.all() and len(p) == 16

    def test_whilelt_tail(self):
        p = whilelt(SVE(512), 96, 100)
        assert p[:4].all() and not p[4:].any()

    def test_whilelt_empty(self):
        p = whilelt(SVE(512), 100, 100)
        assert not p.any()

    def test_has_predicates_and_prefetch(self):
        isa = SVE(512)
        assert isa.num_predicate_registers == 16
        assert isa.has_sw_prefetch
        assert isa.has_register_transpose

    @given(start=st.integers(0, 1000), extra=st.integers(0, 1000))
    def test_whilelt_active_count_matches_grant(self, start, extra):
        isa = SVE(1024)
        bound = start + extra
        p = whilelt(isa, start, bound)
        assert int(p.sum()) == isa.grant_vl(bound - start, F32)


class TestFactory:
    def test_make_rvv(self):
        assert isinstance(make_isa("rvv", 512), RVV)

    def test_make_sve(self):
        assert isinstance(make_isa("SVE", 512), SVE)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_isa("avx", 512)
