"""Tests for the Cook-Toom transform generator: exactness of the
bilinear identity for 1-D and 2-D Winograd convolution."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.winograd import winograd_matrices


def correlation_1d(d, g):
    m = len(d) - len(g) + 1
    return np.array([np.dot(d[i : i + len(g)], g) for i in range(m)])


def correlation_2d(d, g):
    m = d.shape[0] - g.shape[0] + 1
    out = np.zeros((m, m))
    for i in range(m):
        for j in range(m):
            out[i, j] = (d[i : i + g.shape[0], j : j + g.shape[1]] * g).sum()
    return out


class TestGeneration:
    @pytest.mark.parametrize("m,r", [(2, 3), (4, 3), (6, 3)])
    def test_shapes(self, m, r):
        t = winograd_matrices(m, r)
        alpha = m + r - 1
        assert t.alpha == alpha
        assert t.A.shape == (alpha, m)
        assert t.G.shape == (alpha, r)
        assert t.Bt.shape == (alpha, alpha)

    def test_f63_is_8x8(self):
        """The paper's NNPACK kernel: 8x8 tiles."""
        t = winograd_matrices(6, 3)
        assert t.alpha == 8
        assert t.mul_reduction_2d == pytest.approx(5.0625)

    def test_duplicate_points_rejected(self):
        with pytest.raises(ValueError):
            winograd_matrices(2, 3, points=[Fraction(1), Fraction(1)])

    def test_wrong_point_count_rejected(self):
        with pytest.raises(ValueError):
            winograd_matrices(6, 3, points=[Fraction(0), Fraction(1)])

    def test_invalid_mr(self):
        with pytest.raises(ValueError):
            winograd_matrices(0, 3)

    def test_fallback_points_for_unusual_sizes(self):
        t = winograd_matrices(6, 5)  # no default point table entry
        assert t.alpha == 10
        rng = np.random.default_rng(0)
        d, g = rng.standard_normal(10), rng.standard_normal(5)
        y = t.A.T @ ((t.G @ g) * (t.Bt @ d))
        np.testing.assert_allclose(y, correlation_1d(d, g), rtol=1e-8, atol=1e-8)


class TestBilinearIdentity:
    @pytest.mark.parametrize("m,r", [(2, 3), (4, 3), (6, 3)])
    def test_1d_identity(self, m, r):
        t = winograd_matrices(m, r)
        rng = np.random.default_rng(7)
        for _ in range(5):
            d = rng.standard_normal(t.alpha)
            g = rng.standard_normal(r)
            y = t.A.T @ ((t.G @ g) * (t.Bt @ d))
            np.testing.assert_allclose(y, correlation_1d(d, g), rtol=1e-9, atol=1e-9)

    def test_2d_identity_f63(self):
        t = winograd_matrices(6, 3)
        rng = np.random.default_rng(3)
        d = rng.standard_normal((8, 8))
        g = rng.standard_normal((3, 3))
        y = t.transform_output(t.transform_weight(g) * t.transform_input(d))
        np.testing.assert_allclose(y, correlation_2d(d, g), rtol=1e-8, atol=1e-8)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_2d_identity_property(self, seed):
        t = winograd_matrices(6, 3)
        rng = np.random.default_rng(seed)
        d = rng.uniform(-2, 2, (8, 8))
        g = rng.uniform(-2, 2, (3, 3))
        y = t.transform_output(t.transform_weight(g) * t.transform_input(d))
        np.testing.assert_allclose(y, correlation_2d(d, g), rtol=1e-7, atol=1e-7)

    def test_identity_is_exact_on_integers(self):
        """The generated matrices are exact rationals, so integer tiles
        produce exactly-representable results."""
        t = winograd_matrices(4, 3)
        d = np.arange(36, dtype=np.float64).reshape(6, 6)
        g = np.ones((3, 3))
        y = t.transform_output(t.transform_weight(g) * t.transform_input(d))
        np.testing.assert_allclose(y, correlation_2d(d, g), atol=1e-9)


class TestTransformHelpers:
    def test_transform_shapes(self):
        t = winograd_matrices(6, 3)
        assert t.transform_input(np.zeros((8, 8))).shape == (8, 8)
        assert t.transform_weight(np.zeros((3, 3))).shape == (8, 8)
        assert t.transform_output(np.zeros((8, 8))).shape == (6, 6)

    def test_dataclass_frozen(self):
        t = winograd_matrices(2, 3)
        with pytest.raises(Exception):
            t.m = 99

    def test_larger_tiles_reduce_muls_more(self):
        """The paper's motivation for bigger tiles (and why accuracy
        concerns cap them at 8x8)."""
        reductions = [winograd_matrices(m, 3).mul_reduction_2d for m in (2, 4, 6)]
        assert reductions == sorted(reductions)


class TestNumericalAccuracy:
    def test_f63_fp32_accuracy_within_cnn_tolerance(self):
        """F(6,3) in fp32 stays within ~1e-3 relative error — the paper's
        reason to stop at 8x8 tiles rather than longer-vector tiles."""
        t = winograd_matrices(6, 3)
        rng = np.random.default_rng(11)
        worst = 0.0
        for _ in range(20):
            d = rng.standard_normal((8, 8)).astype(np.float32)
            g = rng.standard_normal((3, 3)).astype(np.float32)
            u = (t.G @ g.astype(np.float64) @ t.G.T).astype(np.float32)
            v = (t.Bt @ d.astype(np.float64) @ t.Bt.T).astype(np.float32)
            y = (t.A.T @ (u * v).astype(np.float64) @ t.A).astype(np.float32)
            ref = correlation_2d(d.astype(np.float64), g.astype(np.float64))
            worst = max(worst, float(np.abs(y - ref).max() / (np.abs(ref).max() + 1)))
        assert worst < 1e-3

    def test_bigger_tile_is_less_accurate(self):
        """Sanity: F(10,3)-class tiles lose accuracy vs F(6,3) — the
        numerical cliff the paper's inter-tile scheme avoids."""

        def fp32_err(m):
            t = winograd_matrices(m, 3)
            rng = np.random.default_rng(5)
            d = rng.standard_normal((t.alpha, t.alpha)).astype(np.float32)
            g = rng.standard_normal((3, 3)).astype(np.float32)
            u = (t.G @ g.astype(np.float64) @ t.G.T).astype(np.float32)
            v = (t.Bt @ d.astype(np.float64) @ t.Bt.T).astype(np.float32)
            y = (t.A.T @ (u * v).astype(np.float64) @ t.A).astype(np.float32)
            ref = correlation_2d(d.astype(np.float64), g.astype(np.float64))
            return float(np.abs(y - ref).max())

        assert fp32_err(10) > fp32_err(6)
