"""Temporal dataflow analysis: reuse distances, def-use, baseline gate.

Three pass families under test:

* **Reuse distances** (:mod:`repro.analysis.reusedist`) — exact on
  handmade cyclic/strided streams, monotone miss curves on real traces,
  and the predicted L2 knee validated against a *real*
  ``sweep_cache_sizes`` run (tolerance: within one power of two of the
  capacity where the simulated miss curve flattens — the band
  documented in docs/ANALYSIS.md).
* **Def-use chains** (:mod:`repro.analysis.defuse`) — every seeded
  corruption trips exactly its rule, every shipped preset/policy comes
  back clean, and exemptions (external buffers, ``_out`` sinks,
  same-label RMW) hold.
* **Baseline gate** (:mod:`repro.analysis.baseline`) — canonical
  reports are reproducible, the committed references match live runs,
  and injected drift flips the CLI exit code.
"""

import json

import numpy as np
import pytest

from repro.analysis import (
    analyze_trace,
    canonical_report,
    defuse_trace,
    diff_documents,
    filter_findings,
    reuse_distances,
    rule_rows,
    verify_trace,
)
from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.findings import Finding
from repro.analysis.rules import RULES
from repro.cli import main
from repro.core import sweep_cache_sizes, tracecache
from repro.machine import rvv_gem5, sve_gem5
from repro.machine.config import KB, MB
from repro.machine.trace import RecordedTrace, TraceRecorder
from repro.nets import ConvLayer, KernelPolicy, Network
from repro.nets.zoo import yolov3_tiny

pytestmark = pytest.mark.filterwarnings("error")


@pytest.fixture(scope="module")
def machine():
    return rvv_gem5(vlen_bits=512, l2_mb=1)


def small_net():
    return Network(
        [ConvLayer(8, 3, 1), ConvLayer(16, 3, 1)],
        input_shape=(4, 32, 32),
        name="small",
    )


@pytest.fixture(scope="module")
def trace(machine):
    return small_net().record_trace(machine, KernelPolicy())


def rules_of(findings):
    return {f.rule for f in findings}


# ----------------------------------------------------------------------
# Reuse distances: exact on handmade streams
# ----------------------------------------------------------------------

def test_cyclic_stream_exact_stack_distance(machine):
    """Re-streaming R lines cyclically gives stack distance exactly R."""
    line = machine.l2.line_bytes
    R, passes = 64, 5
    rec = TraceRecorder(machine)
    buf = rec.alloc("x", R * line)
    with rec.kernel("k"):
        for _ in range(passes):
            for i in range(R):
                rec.vload(buf.base + i * line, line // 4, 4)
    rr = reuse_distances(rec.finish(), machine)
    assert rr.n_lines == R
    assert float(rr.cold.sum()) == R
    assert float(rr.total.sum()) == passes * R
    hist = rr.hist.sum(axis=0)
    b = int(np.log2(R))
    # All reuse mass in the bucket containing R; nothing anywhere else.
    assert hist[b] == (passes - 1) * R
    assert hist.sum() == hist[b]
    # A cache of 2R lines holds the whole loop: only cold misses left.
    assert rr.miss_ratio(2 * R * line) == pytest.approx(1 / passes)
    # Half the loop thrashes LRU completely.
    assert rr.miss_ratio(R * line // 2) == 1.0


def test_strided_expansion_one_line_per_element(machine):
    line = machine.l2.line_bytes
    rec = TraceRecorder(machine)
    buf = rec.alloc("x", 1 << 20)
    with rec.kernel("k"):
        rec.vload(buf.base, 8, 4, stride=line)  # 8 distinct lines
        rec.vload(buf.base, 8, 4, stride=line)  # ... reused at depth 8
    rr = reuse_distances(rec.finish(), machine)
    assert rr.n_lines == 8 and rr.n_touches == 16
    assert float(rr.cold.sum()) == 8
    assert rr.hist.sum(axis=0)[3] == 8  # sd = 8 -> bucket log2(8) = 3


def test_per_label_histograms_are_disjoint(machine):
    line = machine.l2.line_bytes
    rec = TraceRecorder(machine)
    buf = rec.alloc("x", 64 * line)
    with rec.kernel("a"):
        for _ in range(2):
            for i in range(4):
                rec.vload(buf.base + i * line, line // 4, 4)
    with rec.kernel("b"):
        for _ in range(2):
            for i in range(8):
                rec.vload(buf.base + (32 + i) * line, line // 4, 4)
    rr = reuse_distances(rec.finish(), machine)
    ia, ib = rr.labels.index("a"), rr.labels.index("b")
    assert rr.total[ia] == 8 and rr.total[ib] == 16
    assert rr.cold[ia] == 4 and rr.cold[ib] == 8
    assert rr.hist[ia].sum() == 4 and rr.hist[ib].sum() == 8
    # Label "a" cycles 4 lines: exact sd = 4 (bucket 2).  Label "b"
    # cycles 8, but StatStack mixes in a's shorter reuse times, so its
    # estimate is slightly below 8 — still strictly deeper than a's.
    assert rr.hist[ia, 2] == 4
    assert rr._label_quantile(ib, 0.5) >= rr._label_quantile(ia, 0.5)
    assert rr.miss_ratio(4 * line, "b") == 1.0  # 4 lines thrash b
    assert rr.miss_ratio(16 * line, "b") == 0.5  # 16 lines hold it


def test_sampling_weights_enter_the_clock(machine):
    """A weighted touch advances virtual time by its weight."""
    line = machine.l2.line_bytes
    rec = TraceRecorder(machine)
    buf = rec.alloc("x", 64 * line)
    with rec.kernel("k"), rec.region(3.0):
        rec.vload(buf.base, line // 4, 4)
    rr = reuse_distances(rec.finish(), machine)
    assert float(rr.total.sum()) == 3.0
    assert float(rr.cold.sum()) == 3.0


def test_miss_curve_monotone_on_real_trace(trace, machine):
    rr = reuse_distances(trace, machine)
    curve = rr.miss_curve()
    caps = sorted(curve, key=int)
    vals = [curve[c] for c in caps]
    assert all(0.0 <= v <= 1.0 for v in vals)
    assert all(a >= b - 1e-12 for a, b in zip(vals, vals[1:]))
    # The knee is one of the tabulated capacities' neighbourhood and
    # the curve is essentially flat (cold-only) beyond it.
    knee = rr.predicted_knee_bytes()
    assert knee >= rr.line_bytes


def test_reuse_report_rows_and_dict(trace, machine):
    rr = reuse_distances(trace, machine)
    rows = rr.rows()
    assert rows and {"kernel", "touches_m", "cold_pct", "sd_p50_kb",
                     "sd_p90_kb", "miss_1mb_pct"} <= set(rows[0])
    # Sorted by touch mass, heaviest first.
    masses = [r["touches_m"] for r in rows]
    assert masses == sorted(masses, reverse=True)
    doc = rr.as_dict()
    assert doc["n_touches"] == rr.n_touches and doc["labels"]


def test_im2col_winograd_reuse_separation(machine):
    """Winograd's transform streams have shorter reuse than im2col+GEMM.

    The paper's Section VII argument: the Winograd pipeline trades the
    im2col'd GEMM's long re-streaming reuse for tile-local transforms.
    The per-label histograms must show gemm's median stack distance
    above the winograd transforms' (on the same layer shapes).
    """
    net = Network([ConvLayer(32, 3, 1)], input_shape=(16, 32, 32), name="c")
    t_gemm = net.record_trace(machine, KernelPolicy(winograd="off"))
    t_wino = net.record_trace(machine, KernelPolicy(winograd="stride1"))
    r_gemm = reuse_distances(t_gemm, machine)
    r_wino = reuse_distances(t_wino, machine)
    assert "gemm" in r_gemm.labels
    wino_labels = [l for l in r_wino.labels if l.startswith("wino")]
    assert wino_labels
    gemm_p50 = r_gemm._label_quantile(r_gemm.labels.index("gemm"), 0.5)
    wino_p50 = max(
        r_wino._label_quantile(r_wino.labels.index(l), 0.5)
        for l in wino_labels
        if r_wino.hist[r_wino.labels.index(l)].sum() > 0
    )
    assert wino_p50 <= gemm_p50


def test_knee_matches_real_cache_sweep():
    """Predicted knee within one power of two of the sweep's flat point.

    The documented tolerance band (docs/ANALYSIS.md): the predicted
    knee ``K`` satisfies ``F/2 <= K <= 2F`` where ``F`` is the smallest
    swept capacity whose simulated miss rate equals the largest swept
    capacity's (the measured flattening).  The predicted miss-ratio
    curve must also order the swept capacities the same way the
    simulation does.
    """
    net = yolov3_tiny()
    m = rvv_gem5(vlen_bits=512, l2_mb=1)
    t, _ = tracecache.get_or_capture(net, m, KernelPolicy(), 13)
    rr = reuse_distances(t, m)
    knee = rr.predicted_knee_bytes()

    sizes = [4, 32, 64]
    res = sweep_cache_sizes(
        net, sizes,
        lambda mb: rvv_gem5(vlen_bits=512, l2_mb=mb),
        n_layers=13, use_trace=True,
    )
    sim = {r["l2_mb"]: r["l2_miss_rate"] for r in res.as_rows()}
    flat = next(
        mb for mb in sizes if abs(sim[mb] - sim[sizes[-1]]) < 1e-9
    )
    assert flat * MB // 2 <= knee <= 2 * flat * MB, (knee, flat)

    # Ordering agreement: predicted miss(C) decreasing exactly where
    # the simulated miss rate decreases.
    pred = [rr.miss_ratio(mb * MB) for mb in sizes]
    simv = [sim[mb] for mb in sizes]
    for (pa, pb), (sa, sb) in zip(
        zip(pred, pred[1:]), zip(simv, simv[1:])
    ):
        if sa > sb + 1e-6:
            assert pa > pb, (pred, simv)
        assert pb <= pa + 1e-12


# ----------------------------------------------------------------------
# Def-use: every seeded corruption fires exactly its rule
# ----------------------------------------------------------------------

def _seed_read_before_write(machine):
    rec = TraceRecorder(machine)
    ws = rec.alloc("ws", 64 * KB)
    with rec.kernel("pack"):
        rec.vstore(ws.base, 64, 4)                 # defines [0, 256)
    with rec.kernel("consume"):
        rec.vload(ws.base + 4096, 64, 4)           # reads undefined bytes
    with rec.kernel("pack_late"):
        rec.vstore(ws.base + 4096, 64, 4)          # ... defined only later
    return rec.finish()


def test_read_before_write_fires(machine):
    found = defuse_trace(_seed_read_before_write(machine), machine)
    assert rules_of(found) == {"dataflow/read-before-write"}
    (f,) = found
    assert f.severity == "error" and f.count == 1
    assert "consume" in f.where and "ws" in f.where
    assert f.detail["examples"][0]["op"] == "vload"


def test_write_after_read_overlap_fires(machine):
    rec = TraceRecorder(machine)
    ws = rec.alloc("ws", 64 * KB)
    with rec.kernel("pack"):
        rec.vstore(ws.base, 32, 4)                 # defines [0, 128)
    with rec.kernel("consume"):
        rec.vload(ws.base + 64, 48, 4)             # [64, 256): half stale
    with rec.kernel("late_writer"):
        rec.vstore(ws.base + 128, 16, 4)           # lands on stale bytes
    found = defuse_trace(rec.finish(), machine)
    assert rules_of(found) == {"dataflow/write-after-read-overlap"}
    (f,) = found
    assert f.severity == "error" and "late_writer" in f.where


def test_dead_store_fires(machine):
    rec = TraceRecorder(machine)
    ws = rec.alloc("ws", 64 * KB)
    with rec.kernel("pack"):
        rec.vstore(ws.base, 256, 4)
        rec.vstore(ws.base, 256, 4)                # rewrites, never read
    found = defuse_trace(rec.finish(), machine)
    assert rules_of(found) == {"dataflow/dead-store"}
    (f,) = found
    assert f.severity == "warning"
    assert f.detail["overlapping_bytes"] == 1024


def test_same_label_rmw_is_clean(machine):
    """In-place accumulate (same kernel reads + writes) never fires."""
    rec = TraceRecorder(machine)
    acc = rec.alloc("acc_buf", 64 * KB)
    with rec.kernel("accumulate"):
        rec.vstore(acc.base, 64, 4)
        for _ in range(3):
            rec.vload(acc.base, 128, 4)            # reads past the def
            rec.vstore(acc.base, 128, 4)
    assert defuse_trace(rec.finish(), machine) == []


def test_sink_buffer_exempt_from_dead_store(machine):
    rec = TraceRecorder(machine)
    out = rec.alloc("layer_out", 64 * KB)
    with rec.kernel("store"):
        rec.vstore(out.base, 256, 4)
        rec.vstore(out.base, 256, 4)               # live-out by convention
    assert defuse_trace(rec.finish(), machine) == []


def test_external_buffers_skipped(machine):
    rec = TraceRecorder(machine)
    act = rec.alloc("activations0", 64 * KB)
    scratch = rec.alloc("mystery", 64 * KB)
    with rec.kernel("k"):
        rec.vload(act.base, 64, 4)                 # external by prefix
        rec.vload(scratch.base, 64, 4)             # first access is a read
    with rec.kernel("k2"):
        rec.vstore(act.base, 64, 4)
        rec.vstore(scratch.base, 64, 4)
    assert defuse_trace(rec.finish(), machine) == []


def test_verify_trace_gates_on_dataflow(machine):
    bad = _seed_read_before_write(machine)
    assert "dataflow/read-before-write" in rules_of(verify_trace(bad, machine))
    assert verify_trace(bad, machine, dataflow=False) == []


def test_replay_verify_rejects_dataflow_corruption(machine):
    from repro.machine.replay import replay

    bad = _seed_read_before_write(machine)
    with pytest.raises(ValueError, match="failed verification"):
        replay(bad, machine, verify=True)


def test_real_trace_surgery_consume_before_pack(trace, machine):
    """Delaying half of layer-0's im2col trips read-before-write.

    Moving *all* of im2col would make the workspace's first access a
    read, which the pass deliberately treats as external data; moving
    the upper half keeps im2col as the first writer while the GEMM
    consumes rows that are now only produced after it ran.
    """
    kid_im2col = trace.labels.index("im2col")
    kid_gemm = trace.labels.index("gemm")
    kid = np.asarray(trace.kid)
    first_gemm = int(np.flatnonzero(kid == kid_gemm)[0])
    layer0 = np.flatnonzero(kid[:first_gemm] == kid_im2col)
    move = np.zeros(kid.size, dtype=bool)
    move[layer0[layer0.size // 2:]] = True
    # Stable two-phase order: everything else first, moved events last.
    order = np.argsort(move, kind="stable")
    cols = [
        np.asarray(getattr(trace, name))[order]
        for name in ("op", "w", "kid", "i0", "i1", "i2", "i3", "f0")
    ]
    bad = RecordedTrace(
        trace.key, trace.isa_name, trace.vlen_bits, trace.l1_line_bytes,
        trace.labels, *cols, buffers=trace.buffers,
    )
    found = defuse_trace(bad, machine)
    assert "dataflow/read-before-write" in rules_of(found)
    assert any("workspace" in f.where for f in found)


def test_all_dataflow_rules_registered():
    fired = {"dataflow/read-before-write",
             "dataflow/write-after-read-overlap",
             "dataflow/dead-store"}
    assert fired <= set(RULES)
    for rule in fired:
        sev, pas, _desc = RULES[rule]
        assert pas == "defuse" and sev in ("error", "warning")


# ----------------------------------------------------------------------
# Zero findings on shipped presets (defuse included via verify_trace)
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "machine_fn, policy",
    [
        (lambda: rvv_gem5(l2_mb=4), KernelPolicy(gemm="6loop", winograd="all3x3")),
        (lambda: sve_gem5(l2_mb=4), KernelPolicy(gemm="6loop", winograd="all3x3")),
        (lambda: sve_gem5(l2_mb=4), KernelPolicy(winograd="stride1")),
    ],
    ids=["rvv-6loop-all3x3", "sve-6loop-all3x3", "sve-wino"],
)
def test_presets_defuse_clean(machine_fn, policy):
    m = machine_fn()
    rep = yolov3_tiny().analyze(m, policy, n_layers=6)
    assert rep.ok, [f.as_dict() for f in rep.findings]
    assert rep.reuse and rep.reuse_knee_bytes > 0


# ----------------------------------------------------------------------
# Rule filtering and example caps (CLI satellites)
# ----------------------------------------------------------------------

def _findings():
    return [
        Finding(rule="trace/oob-overrun", severity="error", where="a", message="m"),
        Finding(rule="dataflow/dead-store", severity="warning", where="b", message="m"),
        Finding(rule="config/vlen-illegal", severity="error", where="c", message="m"),
    ]


def test_filter_findings_prefixes():
    fs = _findings()
    assert filter_findings(fs) == fs
    assert rules_of(filter_findings(fs, rules=["dataflow"])) == {
        "dataflow/dead-store"
    }
    assert rules_of(filter_findings(fs, rules=["trace", "config"])) == {
        "trace/oob-overrun", "config/vlen-illegal"
    }
    assert rules_of(filter_findings(fs, ignore=["dataflow/dead-store"])) == {
        "trace/oob-overrun", "config/vlen-illegal"
    }
    assert filter_findings(fs, rules=["dataflow"], ignore=["dataflow"]) == []


def test_rule_rows_cover_registry():
    rows = rule_rows()
    assert {r["rule"] for r in rows} == set(RULES)
    assert all(r["severity"] in ("error", "warning") for r in rows)


def test_max_examples_caps_detail(machine):
    rec = TraceRecorder(machine)
    ws = rec.alloc("ws", 64 * KB)
    with rec.kernel("pack"):
        rec.vstore(ws.base, 64, 4)
    with rec.kernel("consume"):
        for i in range(8):
            rec.vload(ws.base + 4096 + i * 256, 64, 4)
    with rec.kernel("pack_late"):
        for i in range(8):
            rec.vstore(ws.base + 4096 + i * 256, 64, 4)
    bad = rec.finish()
    for cap in (1, 5):
        found = verify_trace(bad, machine, max_examples=cap)
        (f,) = found
        assert f.count == 8 and len(f.detail["examples"]) == cap


def test_max_examples_in_report(trace, machine):
    rep = analyze_trace(trace, machine, net_name="small", max_examples=7)
    assert rep.max_examples == 7
    assert json.loads(rep.to_json())["max_examples"] == 7


def test_analyze_trace_rule_filters(trace, machine):
    # An unconstructible vlen makes lint and the verifier fire;
    # filtering must be able to silence them selectively.
    bad = rvv_gem5(vlen_bits=512, l2_mb=1)
    object.__setattr__(bad, "vlen_bits", 384)
    rep = analyze_trace(trace, bad, policy=KernelPolicy(), net_name="s")
    assert not rep.ok
    rep2 = analyze_trace(
        trace, bad, policy=KernelPolicy(), net_name="s",
        ignore=["config", "trace"],
    )
    assert rep2.ok
    rep3 = analyze_trace(
        trace, bad, policy=KernelPolicy(), net_name="s", rules=["dataflow"]
    )
    assert rep3.ok


def test_cli_list_rules(capsys):
    rc = main(["analyze", "--list-rules"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "dataflow/dead-store" in out and "trace/oob-overrun" in out


def test_cli_rules_and_max_examples(capsys):
    rc = main(["analyze", "--net", "yolov3-tiny", "--layers", "2",
               "--l2-mb", "4", "--rules", "dataflow,trace",
               "--max-examples", "5", "--json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 0 and doc["ok"] is True and doc["max_examples"] == 5


def test_cli_ignore_suppresses_failure(capsys):
    # vlen 384 fails lint + verifier; ignoring both families passes.
    rc = main(["analyze", "--net", "yolov3-tiny", "--layers", "2",
               "--vlen", "384"])
    assert rc == 1
    capsys.readouterr()
    rc = main(["analyze", "--net", "yolov3-tiny", "--layers", "2",
               "--vlen", "384", "--ignore", "config,trace"])
    capsys.readouterr()
    assert rc == 0


# ----------------------------------------------------------------------
# Baseline gate
# ----------------------------------------------------------------------

def test_canonical_report_reproducible(trace, machine):
    rep1 = analyze_trace(trace, machine, policy=KernelPolicy(), net_name="s")
    rep2 = analyze_trace(trace, machine, policy=KernelPolicy(), net_name="s")
    d1, d2 = canonical_report(rep1), canonical_report(rep2)
    assert "trace_key" not in d1 and "trace_cached" not in d1
    assert diff_documents(d1, d2) == []
    assert json.dumps(d1, sort_keys=True) == json.dumps(d2, sort_keys=True)


def test_diff_documents_readable():
    base = {"a": 1, "rows": [{"x": 1.0}, {"x": 2.0}], "gone": True}
    live = {"a": 2, "rows": [{"x": 1.0}], "new": "k"}
    drift = diff_documents(base, live)
    assert any(d.startswith("a: 1 -> 2") for d in drift)
    assert any("rows: length 2 -> 1" in d for d in drift)
    assert any("gone" in d and "absent in live" in d for d in drift)
    assert any("new" in d and "absent in baseline" in d for d in drift)
    assert diff_documents(base, base) == []


def test_baseline_roundtrip_and_drift(tmp_path, trace, machine):
    rep = analyze_trace(trace, machine, policy=KernelPolicy(), net_name="s")
    path = str(tmp_path / "base.json")
    doc = canonical_report(rep)
    write_baseline(path, doc)
    assert diff_documents(load_baseline(path), doc) == []
    tampered = load_baseline(path)
    tampered["n_events"] += 1
    drift = diff_documents(tampered, doc)
    assert len(drift) == 1 and drift[0].startswith("n_events:")


def test_cli_baseline_gate(tmp_path, capsys):
    path = str(tmp_path / "tiny.json")
    args = ["analyze", "--net", "yolov3-tiny", "--layers", "2",
            "--l2-mb", "4", "--baseline", path]
    assert main(args + ["--update-baseline"]) == 0
    capsys.readouterr()
    assert main(args) == 0                      # matches what it wrote
    capsys.readouterr()
    doc = load_baseline(path)
    doc["reuse_knee_bytes"] *= 2
    write_baseline(path, doc)
    assert main(args) == 1                      # injected drift fails
    err = capsys.readouterr().err
    assert "drifted" in err and "reuse_knee_bytes" in err


def test_cli_baseline_json_is_canonical(tmp_path, capsys):
    path = str(tmp_path / "tiny.json")
    args = ["analyze", "--net", "yolov3-tiny", "--layers", "2",
            "--l2-mb", "4", "--baseline", path, "--json"]
    assert main(args + ["--update-baseline"]) == 0
    out = capsys.readouterr().out
    # stdout carries the canonical document (CI artifact), identical to
    # the baseline file just written.
    assert diff_documents(load_baseline(path), json.loads(out)) == []


def test_committed_baseline_matches_live():
    """The in-repo yolov3-tiny/rvv reference matches a fresh analysis."""
    import os

    path = os.path.join(
        os.path.dirname(__file__), "data", "analysis", "yolov3-tiny-rvv.json"
    )
    rep = yolov3_tiny().analyze(rvv_gem5(), KernelPolicy())
    drift = diff_documents(load_baseline(path), canonical_report(rep))
    assert drift == [], drift[:20]
