"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro.isa.base
import repro.isa.registers
import repro.isa.rvv
import repro.isa.sve
import repro.kernels.winograd.stride2
import repro.machine.latency

MODULES = [
    repro.isa.base,
    repro.isa.registers,
    repro.isa.rvv,
    repro.isa.sve,
    repro.kernels.winograd.stride2,
    repro.machine.latency,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failures in {module.__name__}"
