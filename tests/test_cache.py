"""Unit + property tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import SetAssocCache


def make_cache(size=1024, assoc=4, line=64):
    return SetAssocCache(size, assoc, line, latency=10, name="t")


class TestGeometry:
    def test_num_sets(self):
        c = make_cache(size=1024, assoc=4, line=64)
        assert c.num_sets == 4

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssocCache(1000, 3, 64)
        with pytest.raises(ValueError):
            SetAssocCache(0, 1, 64)

    def test_fully_associative(self):
        c = SetAssocCache(2048, 32, 64)  # the RVV VectorCache shape
        assert c.num_sets == 1


class TestHitsMisses:
    def test_cold_miss_then_hit(self):
        c = make_cache()
        assert c.access(0) is False
        assert c.access(0) is True
        assert c.hits == 1 and c.misses == 1

    def test_capacity_eviction_lru(self):
        c = make_cache(size=256, assoc=4, line=64)  # 1 set, 4 ways
        for la in range(4):
            c.access(la)
        c.access(0)  # refresh line 0 -> MRU
        c.access(4)  # evicts line 1 (LRU)
        assert c.access(0) is True
        assert c.access(1) is False  # was evicted

    def test_set_isolation(self):
        c = make_cache(size=1024, assoc=4, line=64)  # 4 sets
        # Lines 0,4,8,12,16 all map to set 0; lines 1,2,3 to other sets.
        for la in [0, 4, 8, 12, 16]:
            c.access(la)
        assert c.access(1) is False  # untouched set: cold
        assert c.access(4) is True  # still resident in set 0

    def test_conflict_misses(self):
        c = make_cache(size=1024, assoc=4, line=64)  # 4 sets, 4 ways
        # 5 lines in the same set thrash with LRU when cycled in order.
        seq = [0, 4, 8, 12, 16] * 3
        for la in seq:
            c.access(la)
        assert c.misses == len(seq)  # classic LRU pathological pattern

    def test_miss_rate(self):
        c = make_cache()
        c.access(0)
        c.access(0)
        c.access(0)
        assert c.miss_rate == pytest.approx(1 / 3)

    def test_miss_rate_empty(self):
        assert make_cache().miss_rate == 0.0


class TestDirtyWriteback:
    def test_writeback_on_dirty_eviction(self):
        c = make_cache(size=256, assoc=4, line=64)
        c.access(0, write=True)
        for la in range(1, 5):
            c.access(la)
        assert c.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = make_cache(size=256, assoc=4, line=64)
        for la in range(5):
            c.access(la)
        assert c.writebacks == 0

    def test_write_hit_marks_dirty(self):
        c = make_cache(size=256, assoc=4, line=64)
        c.access(0)
        c.access(0, write=True)
        for la in range(1, 5):
            c.access(la)
        assert c.writebacks == 1


class TestPrefetchFill:
    def test_fill_makes_future_hit(self):
        c = make_cache()
        assert c.fill(7) is True
        assert c.access(7) is True
        assert c.prefetch_fills == 1

    def test_fill_duplicate_is_noop(self):
        c = make_cache()
        c.access(7)
        assert c.fill(7) is False

    def test_fill_does_not_count_demand(self):
        c = make_cache()
        c.fill(3)
        assert c.accesses == 0


class TestStateOps:
    def test_flush(self):
        c = make_cache()
        c.access(0)
        c.flush()
        assert c.access(0) is False
        assert c.resident_lines() == 1

    def test_reset_stats_keeps_state(self):
        c = make_cache()
        c.access(0)
        c.reset_stats()
        assert c.hits == 0 and c.misses == 0
        assert c.access(0) is True  # line still resident

    def test_contains_no_side_effects(self):
        c = make_cache()
        c.access(0)
        hits, misses = c.hits, c.misses
        assert c.contains(0) and not c.contains(99)
        assert (c.hits, c.misses) == (hits, misses)


class TestProperties:
    @given(st.lists(st.integers(0, 200), min_size=1, max_size=300))
    @settings(max_examples=50)
    def test_resident_never_exceeds_capacity(self, addrs):
        c = make_cache(size=512, assoc=2, line=64)  # 8 lines capacity
        for la in addrs:
            c.access(la)
        assert c.resident_lines() <= 8
        assert c.hits + c.misses == len(addrs)

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_rehit_after_access(self, addrs):
        """Immediately re-accessing any line must hit (MRU residency)."""
        c = make_cache(size=1024, assoc=4, line=64)
        for la in addrs:
            c.access(la)
            assert c.contains(la)

    @given(
        st.integers(1, 64).map(lambda w: w * 64),
        st.lists(st.integers(0, 1000), min_size=1, max_size=200),
    )
    @settings(max_examples=30)
    def test_bigger_cache_never_more_misses(self, small_size, addrs):
        """Miss count must be monotone non-increasing with capacity (LRU
        inclusion property for fully-associative caches)."""
        small = SetAssocCache(small_size, small_size // 64, 64)
        big = SetAssocCache(small_size * 4, small_size * 4 // 64, 64)
        for la in addrs:
            small.access(la)
            big.access(la)
        assert big.misses <= small.misses
