"""Crash-consistency tests for the user-facing emitters.

A fault injected *inside* the write callback of ``dump_gem5_stats``,
``write_baseline``, and ``rows_to_csv`` — after the temp file is
written, before the atomic rename — must never leave a torn artifact:
either the old content survives untouched or no file exists at all,
and no ``.tmp`` litter remains.  Both a plain exception and a
KeyboardInterrupt (ctrl-C mid-emission) are exercised, and each
emitter is re-run afterwards to prove clean recovery.
"""

import json

import pytest

from repro.analysis.baseline import load_baseline, write_baseline
from repro.core.export import rows_to_csv
from repro.machine import TraceSimulator, dump_gem5_stats, rvv_gem5
from repro.testing.faults import (
    FAULTS_ENV,
    FaultSpec,
    InjectedFault,
    install_faults,
)

KINDS = [("raise", InjectedFault), ("keyboard-interrupt", KeyboardInterrupt)]


@pytest.fixture(autouse=True)
def no_ambient_faults(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV, raising=False)


def arm(monkeypatch, tmp_path, site, kind):
    sched = install_faults(
        str(tmp_path / "faults.json"), [FaultSpec(site=site, kind=kind)]
    )
    monkeypatch.setenv(FAULTS_ENV, sched)


def make_stats(extra_scalar=0):
    sim = TraceSimulator(rvv_gem5(1024))
    buf = sim.alloc("x", 4096)
    with sim.kernel("gemm"):
        sim.vload(buf.base, 32)
        sim.varith(32, 4)
    sim.scalar(10 + extra_scalar)
    return sim


def assert_no_litter(directory):
    litter = [p.name for p in sorted(directory.iterdir())
              if "tmp" in p.name]
    assert litter == [], f"temp litter after crash: {litter}"


class TestReportEmission:
    @pytest.mark.parametrize("kind,exc", KINDS)
    def test_fresh_emission_crash_leaves_nothing(
        self, tmp_path, monkeypatch, kind, exc
    ):
        out = tmp_path / "out"
        target = out / "stats.txt"
        sim = make_stats()
        arm(monkeypatch, tmp_path, "report.write", kind)
        with pytest.raises(exc):
            dump_gem5_stats(sim.stats, str(target), sim.machine)
        assert not target.exists()
        assert_no_litter(out)

    @pytest.mark.parametrize("kind,exc", KINDS)
    def test_overwrite_crash_keeps_old_then_recovers(
        self, tmp_path, monkeypatch, kind, exc
    ):
        out = tmp_path / "out"
        target = out / "stats.txt"
        dump_gem5_stats(make_stats().stats, str(target), make_stats().machine)
        before = target.read_text()

        newer = make_stats(extra_scalar=100)
        arm(monkeypatch, tmp_path, "report.write", kind)
        with pytest.raises(exc):
            dump_gem5_stats(newer.stats, str(target), newer.machine)
        assert target.read_text() == before
        assert_no_litter(out)

        # The fault budget (times=1) is spent: the retry lands whole.
        dump_gem5_stats(newer.stats, str(target), newer.machine)
        after = target.read_text()
        assert after != before
        assert "End Simulation Statistics" in after
        assert_no_litter(out)


class TestBaselineEmission:
    @pytest.mark.parametrize("kind,exc", KINDS)
    def test_crash_keeps_old_then_recovers(
        self, tmp_path, monkeypatch, kind, exc
    ):
        out = tmp_path / "out"
        target = out / "baseline.json"
        write_baseline(str(target), {"net": "a", "version": 1})
        assert load_baseline(str(target))["version"] == 1

        arm(monkeypatch, tmp_path, "baseline.write", kind)
        with pytest.raises(exc):
            write_baseline(str(target), {"net": "a", "version": 2})
        assert load_baseline(str(target))["version"] == 1
        assert_no_litter(out)

        write_baseline(str(target), {"net": "a", "version": 2})
        assert load_baseline(str(target))["version"] == 2
        assert_no_litter(out)

    def test_fresh_crash_leaves_nothing(self, tmp_path, monkeypatch):
        out = tmp_path / "out"
        target = out / "baseline.json"
        arm(monkeypatch, tmp_path, "baseline.write", "raise")
        with pytest.raises(InjectedFault):
            write_baseline(str(target), {"net": "a"})
        assert not target.exists()
        assert_no_litter(out)


class TestCsvEmission:
    @pytest.mark.parametrize("kind,exc", KINDS)
    def test_crash_keeps_old_then_recovers(
        self, tmp_path, monkeypatch, kind, exc
    ):
        out = tmp_path / "out"
        target = out / "sweep.csv"
        rows_to_csv([{"vlen": 512, "cycles": 10}], str(target))
        before = target.read_text()
        assert "vlen" in before

        arm(monkeypatch, tmp_path, "export.write", kind)
        with pytest.raises(exc):
            rows_to_csv([{"vlen": 1024, "cycles": 7}], str(target))
        assert target.read_text() == before
        assert_no_litter(out)

        rows_to_csv([{"vlen": 1024, "cycles": 7}], str(target))
        assert "1024" in target.read_text()
        assert_no_litter(out)

    def test_fresh_crash_leaves_nothing(self, tmp_path, monkeypatch):
        out = tmp_path / "out"
        target = out / "sweep.csv"
        arm(monkeypatch, tmp_path, "export.write", "raise")
        with pytest.raises(InjectedFault):
            rows_to_csv([{"vlen": 512}], str(target))
        assert not target.exists()
        assert_no_litter(out)


class TestCorruptionKinds:
    def test_corrupt_fault_hits_temp_not_target(self, tmp_path, monkeypatch):
        """A 'corrupt' fault mangles the temp file mid-flight; the rename
        still publishes it — proving the fault path exercises the real
        pre-rename window (the resilience loader is what catches this
        for digest-carried formats)."""
        out = tmp_path / "out"
        target = out / "baseline.json"
        write_baseline(str(target), {"version": 1})
        arm(monkeypatch, tmp_path, "baseline.write", "corrupt")
        write_baseline(str(target), {"version": 2})
        with pytest.raises(ValueError):
            json.loads(target.read_text())
        assert_no_litter(out)
