"""Design your own vector CPU and evaluate it on CNN inference.

Shows the co-design workflow the paper advocates for hardware
architects: start from a preset, change one micro-architectural choice
at a time, and watch what happens to real workloads — here, whether a
future RVV part should spend its area on longer vectors, more lanes, or
a bigger L2.

Run:  python examples/design_your_machine.py
"""

import dataclasses

from repro.core import format_table
from repro.machine import MB, CacheParams, rvv_gem5
from repro.nets import KernelPolicy, yolov3

N_LAYERS = 12  # keep the demo quick; use 20+ for paper-grade sweeps


def variant(name, machine):
    return name, machine


def main():
    base = rvv_gem5(vlen_bits=2048, lanes=4, l2_mb=2)
    candidates = [
        variant("baseline: 2048b, 4 lanes, 2MB", base),
        variant("2x vector length", rvv_gem5(vlen_bits=4096, lanes=4, l2_mb=2)),
        variant("2x lanes", rvv_gem5(vlen_bits=2048, lanes=8, l2_mb=2)),
        variant("8x L2 cache", rvv_gem5(vlen_bits=2048, lanes=4, l2_mb=16)),
        variant(
            "slower DRAM (embedded)",
            base.with_(dram_latency=400, dram_bytes_per_cycle=8),
        ),
        variant(
            "tiny VectorCache removed",
            base.with_(
                vpu=dataclasses.replace(base.vpu, vector_cache_bytes=0)
            ),
        ),
        variant(
            "L3-class L2 (32MB, slow)",
            base.with_(l2=CacheParams(32 * MB, 16, 64, 40)),
        ),
    ]

    net = yolov3()
    policy = KernelPolicy(gemm="3loop")
    base_cycles = None
    rows = []
    for name, machine in candidates:
        stats = net.simulate(machine, policy, n_layers=N_LAYERS)
        if base_cycles is None:
            base_cycles = stats.cycles
        rows.append(
            {
                "design": name,
                "cycles": stats.cycles,
                "speedup": base_cycles / stats.cycles,
                "L2 miss %": 100 * stats.l2_miss_rate,
            }
        )
    print(format_table(rows, title="YOLOv3 (first 12 layers) on candidate designs"))
    print(
        "\nReading the table like the paper does: at this design point the "
        "kernels are compute-bound, so extra lanes pay off most, while a "
        "longer vector raises the L2 miss rate and a bigger-but-slower L2 "
        "loses outright — the co-design trade-offs of Sections V-VI."
    )


if __name__ == "__main__":
    main()
