"""Roofline analysis of YOLOv3's convolutional layers on A64FX.

Reproduces Table IV: per-layer arithmetic intensity (exact formula from
Section VI-C(a)) and simulated sustained fraction of the 62.5 GFLOP/s
single-core peak, next to the paper's reported values.

Run:  python examples/roofline_analysis.py
"""

from repro.core import format_table, roofline_table
from repro.machine import a64fx


def main():
    machine = a64fx()
    rows = roofline_table(machine)
    print(
        format_table(
            [
                {
                    "layer": r.layer,
                    "M": r.M,
                    "N": r.N,
                    "K": r.K,
                    "AI (flops/byte)": r.ai,
                    "AI paper": r.ai_paper,
                    "% of peak": r.pct_peak,
                    "% paper": r.pct_peak_paper,
                }
                for r in rows
            ],
            title=f"Table IV reproduction — peak = {machine.peak_gflops} GFLOP/s",
        )
    )

    low = [r for r in rows if r.ai < 20]
    high = [r for r in rows if r.ai > 80]
    print(
        f"\nlow-AI layers (<20 flops/byte) sustain "
        f"{sum(r.pct_peak for r in low) / len(low):.0f}% of peak on average;"
        f" high-AI layers (>80) sustain "
        f"{sum(r.pct_peak for r in high) / len(high):.0f}%."
    )
    print(
        "Matches the paper's observation: layers with small weight "
        "matrices (small M, K) leave performance on the table — a target "
        "for future specialization beyond portable VLA kernels."
    )


if __name__ == "__main__":
    main()
