"""Co-design exploration: YOLOv3 object detection on future RVV machines.

Reproduces the paper's headline hardware question (Sections V-VI):
*how long should vectors be, and how big the L2, for CPU-based CNN
inference?* — by sweeping the RISC-V Vector design space with the
optimized 3-loop GEMM over the first 20 layers of YOLOv3, exactly like
Figs. 6 and 7.

Run:  python examples/yolov3_codesign.py        (takes a few minutes)
      python examples/yolov3_codesign.py --fast (coarser sweep)
"""

import sys

from repro.core import format_series, format_table, sweep_cache_sizes, sweep_vector_lengths
from repro.machine import rvv_gem5
from repro.nets import KernelPolicy, yolov3

N_LAYERS = 20


def main(fast: bool = False):
    net = yolov3()
    policy = KernelPolicy(gemm="3loop")
    vlens = [512, 2048, 8192] if fast else [512, 1024, 2048, 4096, 8192, 16384]
    caches = [1, 64] if fast else [1, 8, 64, 256]

    print("== Vector-length sweep (Fig. 6), 1 MB L2, 8 lanes ==")
    res = sweep_vector_lengths(
        net, vlens, lambda v: rvv_gem5(vlen_bits=v, lanes=8, l2_mb=1),
        policy, n_layers=N_LAYERS,
    )
    print(format_series("YOLOv3 speedup", vlens, res.speedups(), "vlen", "speedup"))
    print(format_series("L2 miss rate", vlens, res.miss_rates(), "vlen", "miss"))

    best_vlen = vlens[max(range(len(vlens)), key=lambda i: res.speedups()[i])]
    print(f"\n-> longest useful vector length at 1 MB: {best_vlen}-bit")

    print("\n== L2 cache sweep (Fig. 7) at two vector lengths ==")
    rows = []
    for vlen in (vlens[0], best_vlen):
        sweep = sweep_cache_sizes(
            net, caches, lambda mb, v=vlen: rvv_gem5(vlen_bits=v, lanes=8, l2_mb=mb),
            policy, n_layers=N_LAYERS,
        )
        rows.append(
            {"vlen": f"{vlen}-bit",
             **{f"{mb}MB": s for mb, s in zip(caches, sweep.speedups())}}
        )
    print(format_table(rows))

    print(
        "\nConclusion (matches the paper): longer vectors pay off up to "
        "~8192 bits, and large low-latency L2s recover the cache misses "
        "long vectors induce — combined, almost 5x over 512-bit @ 1 MB."
    )


if __name__ == "__main__":
    main(fast="--fast" in sys.argv)
