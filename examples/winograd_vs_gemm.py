"""Algorithm selection: Winograd vs im2col+GEMM per convolution layer.

Walks YOLOv3's distinct convolutional layers on the A64FX model and
compares the paper's static selection rule (3x3 stride-1 -> Winograd,
Section VII) with a measurement-driven selector that simulates both
algorithms — the tool a runtime/compiler would embed.

Also verifies numerically, on a small layer, that the Winograd path with
the paper's inter-tile VLA transforms computes the same convolution.

Run:  python examples/winograd_vs_gemm.py
"""

import numpy as np

from repro.core import format_table, measured_choice, paper_rule
from repro.isa import SVE
from repro.kernels import ConvSpec, direct_conv2d
from repro.kernels.winograd import winograd_conv2d
from repro.machine import a64fx
from repro.nets import yolov3
from repro.workloads import discrete_conv_specs


def numerical_check():
    spec = ConvSpec(8, 30, 30, 16, ksize=3, stride=1, pad=1)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((8, 30, 30)).astype(np.float32)
    w = rng.standard_normal((16, 8, 3, 3)).astype(np.float32)
    y_wino = winograd_conv2d(x, w, spec, isa=SVE(2048))  # inter-tile VLA path
    y_ref = direct_conv2d(x, w, spec)
    err = float(np.abs(y_wino - y_ref).max())
    print(f"inter-tile Winograd vs direct convolution: max err = {err:.2e}")
    assert err < 1e-2


def main():
    numerical_check()

    machine = a64fx()
    net = yolov3()
    rows = []
    agreement = 0
    specs = [s for s in discrete_conv_specs(net) if s.ksize == 3][:8]
    for spec in specs:
        rule = paper_rule(spec)
        measured = measured_choice(spec, machine)
        agreement += rule.algorithm == measured.algorithm
        speed = (
            measured.gemm_cycles / measured.winograd_cycles
            if measured.winograd_cycles
            else float("nan")
        )
        rows.append(
            {
                "layer": f"{spec.in_channels}->{spec.out_channels} "
                f"k{spec.ksize}s{spec.stride} @{spec.in_h}",
                "paper rule": rule.algorithm,
                "measured": measured.algorithm,
                "wino speedup": speed,
            }
        )
    print(format_table(rows, title="\nAlgorithm selection on A64FX (YOLOv3 3x3 layers)"))
    print(
        f"\npaper's static rule matches the measured choice on "
        f"{agreement}/{len(rows)} layers"
    )
    print(
        "Conclusion (Section VII): Winograd for 3x3 stride-1; stride-2 "
        "and 1x1 layers stay on im2col+GEMM."
    )


if __name__ == "__main__":
    main()
