"""End-to-end inference demo: image -> letterbox -> YOLOv3-tiny forward.

Mirrors the paper's experimental setup (Section III-B): a 768x576-pixel
input image is letterboxed to the network resolution and run through the
Darknet-style pipeline, here with the functional VLA kernels.  The
detection head output is decoded into the highest-objectness cells.

Run:  python examples/full_inference_demo.py
"""

import numpy as np

from repro.nets import KernelPolicy, yolov3_tiny
from repro.workloads import letterbox, synthetic_image


def main():
    # The paper's input: a 768x576 image, resized by Darknet.
    image = synthetic_image(height=576, width=768)
    net = yolov3_tiny(width=224, height=224)  # reduced res for a quick demo
    x = letterbox(image, 224, 224)
    print(f"input image {image.shape} -> letterboxed {x.shape}")

    out = net.forward(x, KernelPolicy(winograd="stride1"))
    print(f"detection head output: {out.shape}  (255 = 3 anchors x 85)")

    # Decode: objectness lives at channel 4 of each anchor block.
    anchors = 3
    per = out.shape[0] // anchors
    grid_h, grid_w = out.shape[1:]
    best = []
    for a in range(anchors):
        obj = out[a * per + 4]
        idx = np.unravel_index(np.argmax(obj), obj.shape)
        best.append((a, idx, float(obj[idx])))
    print("\nhighest-objectness grid cells (random weights -> ~0.5):")
    for a, (gy, gx), score in best:
        print(f"  anchor {a}: cell ({gy:2d},{gx:2d}) objectness {score:.3f}")

    assert all(0.0 <= s <= 1.0 for _, _, s in best)
    print(
        f"\nforward pass done: {len(net.layers)} layers, "
        f"{len(net.conv_layers())} convolutional, grid {grid_h}x{grid_w}."
    )


if __name__ == "__main__":
    main()
