"""Multi-core scaling of the co-designed kernels (extension).

The paper studies one core; this example asks the follow-on question a
chip architect faces next: if the die hosts N cores sharing the L2 and
the DRAM pins, do the single-core vector-length conclusions survive?

Run:  python examples/multicore_scaling.py
"""

from repro.core import format_table, scaling_curve
from repro.machine import rvv_gem5
from repro.nets import KernelPolicy, yolov3

CORES = (1, 2, 8)
N_LAYERS = 6


def main():
    net = yolov3()
    rows = []
    for vlen in (2048, 16384):
        curve = scaling_curve(
            net,
            rvv_gem5(vlen_bits=vlen, lanes=8, l2_mb=8),
            KernelPolicy(gemm="3loop"),
            CORES,
            n_layers=N_LAYERS,
        )
        rows.append(
            {
                "vlen": f"{vlen}-bit",
                **{f"{c} cores": round(r.speedup_vs_1, 2)
                   for c, r in zip(CORES, curve)},
            }
        )
    print(format_table(rows, title="YOLOv3 (first layers) — speedup vs one core"))
    print(
        "\nThe single-core sweet spot shifts under contention: very long "
        "vectors saturate the shared DRAM bandwidth at low core counts, "
        "while moderate vector lengths keep scaling — co-design again."
    )


if __name__ == "__main__":
    main()
