"""Quickstart: run CNN inference functionally and simulate it on two
vector architectures.

Builds a small convolutional network, checks the optimized VLA kernels
against NumPy end to end, and then compares execution-cycle estimates
for the same network on a RISC-V Vector machine and on the A64FX.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import summarize_stats
from repro.isa import RVV
from repro.machine import a64fx, rvv_gem5
from repro.nets import ConvLayer, KernelPolicy, MaxPoolLayer, Network


def main():
    # ------------------------------------------------------------------
    # 1. Define a network (Darknet-style layers).
    # ------------------------------------------------------------------
    net = Network(
        [
            ConvLayer(16, size=3, stride=1, activation="leaky"),
            MaxPoolLayer(2, 2),
            ConvLayer(32, size=3, stride=1, activation="leaky"),
            ConvLayer(16, size=1, stride=1, pad=0, activation="leaky"),
        ],
        input_shape=(3, 64, 64),
        name="quickstart-cnn",
    )
    print(net.describe())

    # ------------------------------------------------------------------
    # 2. Functional inference — the paper's optimized 3-loop VLA GEMM
    #    produces the same activations as a plain BLAS evaluation.
    # ------------------------------------------------------------------
    rng = np.random.default_rng(0)
    x = rng.standard_normal((3, 64, 64)).astype(np.float32)

    ref = net.forward(x, KernelPolicy(functional_gemm="blas"))
    vla = net.forward(
        x, KernelPolicy(functional_gemm="3loop"), isa=RVV(vlen_bits=4096)
    )
    err = float(np.abs(ref - vla).max())
    print(f"\nmax |blas - 3loop VLA| = {err:.2e}  (identical to fp32 rounding)")
    assert err < 1e-3

    # ------------------------------------------------------------------
    # 3. Timing simulation on two design points.
    # ------------------------------------------------------------------
    print("\nSimulated inference cost:")
    for machine in (rvv_gem5(vlen_bits=4096, lanes=8, l2_mb=1), a64fx()):
        stats = net.simulate(machine, KernelPolicy(gemm="6loop"))
        s = summarize_stats(stats, machine.core.freq_ghz)
        print(
            f"  {machine.name:28s} {s['cycles']:12.3e} cycles "
            f"({s['time_ms']:.3f} ms, {s['gflops']:.1f} GFLOP/s, "
            f"L2 miss {100 * s['l2_miss_rate']:.1f}%)"
        )


if __name__ == "__main__":
    main()
