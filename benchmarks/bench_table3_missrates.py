"""Table III — average consumed vector length and L2 cache miss rate.

Same workload as Fig. 6 (YOLOv3's first 20 layers on RVV @ gem5, 1 MB
L2).  Paper: the average consumed vector length stays close to the
hardware vector length (15902 of 16384 bits at the longest), while the
L2 miss rate climbs from 32 % (512-bit) to 79 % (16384-bit) — the
mechanism behind Fig. 6's saturation.
"""

from conftest import banner, run_once

from repro.core import format_table, sweep_vector_lengths
from repro.machine import rvv_gem5
from repro.nets import KernelPolicy

#: Table III of the paper: vlen -> (avg vlen bits, l2 miss rate %).
PAPER_TABLE3 = {
    512: (512.0, 32),
    1024: (1022.9, 36),
    2048: (2041.9, 39),
    4096: (4063.7, 42),
    8192: (8111.9, 61),
    16384: (15902.2, 79),
}

N_LAYERS = 20


def test_table3_avg_vlen_and_missrate(benchmark, yolo_net):
    vlens = list(PAPER_TABLE3)
    res = run_once(
        benchmark,
        lambda: sweep_vector_lengths(
            yolo_net,
            vlens,
            lambda v: rvv_gem5(vlen_bits=v, lanes=8, l2_mb=1),
            KernelPolicy(gemm="3loop"),
            n_layers=N_LAYERS,
        ),
    )
    rows = []
    for v, st in zip(vlens, res.stats):
        paper_avg, paper_miss = PAPER_TABLE3[v]
        rows.append(
            {
                "vlen": f"{v}-bit",
                "avg vlen (bits)": st.avg_vlen_bits,
                "paper avg": paper_avg,
                "L2 miss %": 100 * st.l2_miss_rate,
                "paper miss %": paper_miss,
            }
        )
    banner("Table III: average vector length and L2 miss rate (RVV @ gem5)")
    print(format_table(rows))

    # Shape: long vectors stay near-fully utilized...
    for row, v in zip(rows, vlens):
        assert row["avg vlen (bits)"] > 0.85 * v
    # ...while the miss rate grows steeply with the vector length.
    misses = [r["L2 miss %"] for r in rows]
    assert misses == sorted(misses)
    assert misses[-1] > 3 * misses[0]
    assert misses[-1] > 50
