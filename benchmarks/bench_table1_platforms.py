"""Table I — hardware platforms.

Regenerates the platform-configuration table from the machine presets
and checks every row of the paper's Table I.
"""

from conftest import banner, run_once

from repro.core import format_table
from repro.machine import KB, MB, a64fx, rvv_gem5, sve_gem5


def _row(m):
    return {
        "platform": m.name,
        "ISA": m.isa_name,
        "processor": m.core.model,
        "clock": f"{m.core.freq_ghz}GHz",
        "L1": f"{m.l1.size_bytes // KB}kB,{m.l1.assoc}-way",
        "L2": f"{m.l2.size_bytes // MB}MB,{m.l2.assoc}-way",
        "line": f"{m.l1.line_bytes}b",
        "prefetch": "Yes" if m.honors_sw_prefetch else "No",
        "max vlen": f"{m.make_isa().mvl_bits}-bit",
    }


def test_table1_platforms(benchmark):
    machines = run_once(
        benchmark, lambda: [rvv_gem5(), sve_gem5(), a64fx()]
    )
    banner("Table I: Hardware Platforms")
    print(format_table([_row(m) for m in machines]))

    rvv, sve, fx = machines
    # Table I, row by row.
    assert rvv.core.model == sve.core.model == "in-order"
    assert fx.core.model == "out-of-order"
    assert all(m.core.freq_ghz == 2.0 for m in machines)
    assert all(m.l1.size_bytes == 64 * KB and m.l1.assoc == 4 for m in machines)
    assert rvv.l2.size_bytes == sve.l2.size_bytes == 1 * MB
    assert fx.l2.size_bytes == 8 * MB and fx.l2.assoc == 16
    assert rvv.l1.line_bytes == sve.l1.line_bytes == 64
    assert fx.l1.line_bytes == 256
    assert (rvv.honors_sw_prefetch, sve.honors_sw_prefetch, fx.honors_sw_prefetch) == (
        False,
        False,
        True,
    )
    assert rvv.make_isa().mvl_bits == 16384
    assert sve.make_isa().mvl_bits == 2048
    assert fx.vlen_bits == 512  # fixed on the real processor
    assert rvv.vpu.lanes == 8  # up to 8 lanes
    # SVE lanes proportional to the vector length.
    assert sve_gem5(2048).vpu.lanes == 4 * sve_gem5(512).vpu.lanes
