"""Section VI-A — optimized 3-loop vs naive Darknet baseline on RVV.

"After vectorizing all the kernels of the convolutional layer and by
optimizing the im2col+GEMM kernel with the 3-loop implementation, we
observe 14x higher performance compared to the naive baseline for the
YOLOv3-Tiny network model."
"""

from conftest import banner, run_once

from repro.machine import rvv_gem5
from repro.nets import KernelPolicy

PAPER_SPEEDUP = 14.0


def test_naive_vs_3loop_yolov3_tiny(benchmark, tiny_net):
    machine = rvv_gem5(vlen_bits=512, lanes=8, l2_mb=1)

    def run():
        naive = tiny_net.simulate(machine, KernelPolicy(gemm="naive"))
        opt = tiny_net.simulate(machine, KernelPolicy(gemm="3loop"))
        return naive.cycles, opt.cycles

    naive_cycles, opt_cycles = run_once(benchmark, run)
    speedup = naive_cycles / opt_cycles
    banner("Section VI-A: YOLOv3-tiny, naive vs optimized 3-loop (RVV @ gem5)")
    print(f"naive baseline : {naive_cycles:.4g} cycles")
    print(f"optimized 3loop: {opt_cycles:.4g} cycles")
    print(f"speedup        : {speedup:.1f}x   (paper: {PAPER_SPEEDUP}x)")
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["speedup_paper"] = PAPER_SPEEDUP

    # Shape: an order-of-magnitude win for vectorization + optimization.
    assert speedup > 7
    assert speedup < 60
