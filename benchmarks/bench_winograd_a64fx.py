"""Section VII-A — Winograd vs optimized im2col+GEMM on A64FX.

Paper (weight transformation excluded — performed offline):
* VGG16 (every conv layer 3x3 stride-1): 1.5x;
* YOLOv3 (38 of 75 conv layers are 3x3): 1.35x;
* per-layer: stride-1 3x3 layers 2.4x faster with Winograd, stride-2
  layers 1.4x *slower* (i.e. 0.71x);
* the remaining 1x1 layers default to im2col+GEMM.
"""

from conftest import banner, run_once

from repro.core import format_table
from repro.kernels import ConvSpec, trace_gemm_6loop, trace_im2col
from repro.kernels.winograd import trace_winograd_conv
from repro.machine import TraceSimulator, a64fx
from repro.nets import KernelPolicy

PAPER = {"vgg16": 1.5, "yolov3": 1.35, "stride1": 2.4, "stride2": 1 / 1.4}


def _gemm_layer_cycles(spec):
    sim = TraceSimulator(a64fx())
    a = sim.alloc("A", spec.M * spec.K * 4)
    b = sim.alloc("B", spec.K * spec.N * 4)
    c = sim.alloc("C", spec.M * spec.N * 4)
    src = sim.alloc("x", spec.in_channels * spec.in_h * spec.in_w * 4)
    trace_im2col(sim, spec, src.base, b.base)
    trace_gemm_6loop(sim, spec.M, spec.N, spec.K, a.base, b.base, c.base)
    return sim.stats.cycles


def _wino_layer_cycles(spec):
    sim = TraceSimulator(a64fx())
    trace_winograd_conv(sim, spec)  # weight transform excluded (offline)
    return sim.stats.cycles


def test_winograd_layer_ratios(benchmark):
    layers = {
        "stride1 (64->128 @304)": ConvSpec(64, 304, 304, 128, 3, 1, 1),
        "stride1 (256->512 @76)": ConvSpec(256, 76, 76, 512, 3, 1, 1),
        "stride2 (64->128 @608)": ConvSpec(64, 608, 608, 128, 3, 2, 1),
        "stride2 (512->1024 @38)": ConvSpec(512, 38, 38, 1024, 3, 2, 1),
    }

    def run():
        return {
            name: _gemm_layer_cycles(s) / _wino_layer_cycles(s)
            for name, s in layers.items()
        }

    ratios = run_once(benchmark, run)
    banner("Section VII-A: per-layer Winograd speedup over im2col+GEMM (A64FX)")
    print(
        format_table(
            [
                {"layer": k, "winograd speedup": v,
                 "paper": PAPER["stride1"] if "stride1" in k else PAPER["stride2"]}
                for k, v in ratios.items()
            ]
        )
    )

    for name, r in ratios.items():
        if "stride1" in name:
            assert r > 1.5  # clearly faster (paper 2.4x)
        else:
            assert r < 1.0  # clearly slower (paper 0.71x)


def test_winograd_network_speedups(benchmark, yolo_net, vgg_net):
    def run():
        fx = a64fx()
        out = {}
        for name, net in (("yolov3", yolo_net), ("vgg16", vgg_net)):
            base = net.simulate(fx, KernelPolicy(gemm="6loop", winograd="off"))
            wino = net.simulate(fx, KernelPolicy(gemm="6loop", winograd="all3x3"))
            out[name] = base.cycles / wino.cycles
        return out

    speedups = run_once(benchmark, run)
    banner("Section VII-A: network-level Winograd speedup (A64FX)")
    for name, s in speedups.items():
        print(f"{name}: {s:.2f}x   (paper: {PAPER[name]}x)")
    benchmark.extra_info.update(speedups)

    # Shape: both networks gain; VGG16 (all-3x3) gains more than YOLOv3
    # (half its layers are 1x1 and default to GEMM).
    assert speedups["vgg16"] > speedups["yolov3"] > 1.1
    assert speedups["vgg16"] < 3.5
