"""Ablation — prefetching on A64FX (Section VI-C).

The paper attributes a large part of the 6-loop GEMM's 2x win on A64FX
to prefetching: hardware stream prefetchers lock onto the packed
panels, and the software prefetch instructions of Fig. 3 are honoured
by the silicon (whereas gem5 treats them as no-ops).  This ablation
turns both off.
"""

from conftest import banner, run_once

from repro.core import format_table
from repro.machine import a64fx
from repro.nets import KernelPolicy

N_LAYERS = 20


def test_prefetch_ablation(benchmark, yolo_net):
    def run():
        variants = {
            "hw+sw prefetch": a64fx(),
            "no sw prefetch": a64fx().with_(honors_sw_prefetch=False),
            "no prefetch at all": a64fx().with_(
                honors_sw_prefetch=False, l1_prefetcher=None, l2_prefetcher=None
            ),
        }
        return {
            name: yolo_net.simulate(m, KernelPolicy(gemm="6loop"), n_layers=N_LAYERS).cycles
            for name, m in variants.items()
        }

    cycles = run_once(benchmark, run)
    base = cycles["hw+sw prefetch"]
    banner("Ablation: prefetching and the 6-loop GEMM on A64FX (YOLOv3, 20 layers)")
    print(
        format_table(
            [
                {"variant": k, "cycles": v, "slowdown": v / base}
                for k, v in cycles.items()
            ]
        )
    )

    # Shape: removing prefetch hurts, and removing all of it hurts most.
    assert cycles["no sw prefetch"] >= base
    assert cycles["no prefetch at all"] > cycles["no sw prefetch"]
    assert cycles["no prefetch at all"] > 1.05 * base
