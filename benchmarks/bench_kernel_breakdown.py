"""Section II-B — execution-time breakdown of CNN inference.

The paper profiles YOLOv3 on A64FX with perf: the convolutional layer
dominates and GEMM consumes 93.4 % of the computation time.  This bench
regenerates the per-kernel breakdown from simulated cycles.
"""

from conftest import banner, run_once

from repro.machine import a64fx
from repro.nets import KernelPolicy, profile_network

PAPER_GEMM_SHARE = 0.934


def test_kernel_breakdown_yolov3_a64fx(benchmark, yolo_net):
    prof = run_once(
        benchmark,
        lambda: profile_network(yolo_net, a64fx(), KernelPolicy(gemm="6loop")),
    )
    banner("Section II-B: YOLOv3 kernel breakdown on A64FX")
    print(prof.format_table())
    print(f"\npaper: GEMM = {PAPER_GEMM_SHARE:.1%}   measured: {prof.share('gemm'):.1%}")
    benchmark.extra_info["gemm_share"] = prof.share("gemm")
    benchmark.extra_info["gemm_share_paper"] = PAPER_GEMM_SHARE

    # Shape: GEMM dominates everything else by a wide margin.
    assert prof.share("gemm") > 0.75
    assert prof.top(1)[0][0] == "gemm"
    others = [s for k, s in prof.shares.items() if k != "gemm"]
    assert prof.share("gemm") > 4 * max(others)
