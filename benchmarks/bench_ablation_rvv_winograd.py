"""Ablation/extension — Winograd on RISC-V Vector.

Section VII: "On RISC-V Vector, currently, no specific intrinsics are
available to perform these [tuple create/transpose] operations.  We
therefore implemented a solution that uses temporary buffers and
additional store and gather-load intrinsics.  This however limits the
performance ... Because of this reason, we do not include RISC-V
results in the Winograd analysis."

Our simulator can quantify what the paper had to leave out: how much the
memory-round-trip transpose costs on RVV, and whether Winograd still
beats im2col+GEMM there.
"""

import dataclasses

from conftest import banner, run_once

from repro.core import format_table
from repro.kernels import ConvSpec, trace_gemm_3loop, trace_im2col
from repro.kernels.winograd import trace_winograd_conv
from repro.machine import TraceSimulator, rvv_gem5
from repro.nets import KernelPolicy

SPEC = ConvSpec(128, 76, 76, 256, 3, 1, 1)


def _wino_cycles(machine):
    sim = TraceSimulator(machine)
    trace_winograd_conv(sim, SPEC)
    return sim.stats.cycles, sim.stats.kernel_cycles


def _gemm_cycles(machine):
    sim = TraceSimulator(machine)
    a = sim.alloc("A", SPEC.M * SPEC.K * 4)
    b = sim.alloc("B", SPEC.K * SPEC.N * 4)
    c = sim.alloc("C", SPEC.M * SPEC.N * 4)
    src = sim.alloc("x", SPEC.in_channels * SPEC.in_h * SPEC.in_w * 4)
    trace_im2col(sim, SPEC, src.base, b.base)
    trace_gemm_3loop(sim, SPEC.M, SPEC.N, SPEC.K, a.base, b.base, c.base)
    return sim.stats.cycles


def test_rvv_winograd_transpose_penalty(benchmark):
    def run():
        out = {}
        for vlen in (2048, 8192):
            m = rvv_gem5(vlen_bits=vlen, lanes=8, l2_mb=8)
            wino, kc = _wino_cycles(m)
            gemm = _gemm_cycles(m)
            transform = (
                kc.get("wino_input_transform", 0)
                + kc.get("wino_output_transform", 0)
            )
            out[vlen] = {
                "vlen": f"{vlen}-bit",
                "wino/gemm speedup": gemm / wino,
                "transform share %": 100 * transform / wino,
            }
        return out

    results = run_once(benchmark, run)
    banner(
        "Extension: Winograd on RVV — cost of the memory-round-trip "
        "transpose (conv 128->256 @76, stride 1)"
    )
    print(format_table(list(results.values())))
    print(
        "\npaper: RVV Winograd omitted because the buffer+scatter/gather "
        "transpose 'limits the performance improvement'."
    )

    # The transforms eat a visible share on RVV (they are nearly free on
    # SVE, which transposes in registers)...
    for row in results.values():
        assert row["transform share %"] > 3
    # ...but the tuple multiplication's 5x flop reduction still carries
    # Winograd past im2col+GEMM at long vector lengths.
    assert results[8192]["wino/gemm speedup"] > 1.0

    _ = KernelPolicy, dataclasses  # imported for interactive extension use
