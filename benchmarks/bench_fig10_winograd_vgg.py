"""Fig. 10 — vector lengths and L2 sizes with Winograd, VGG16 @ gem5-SVE.

All of VGG16's conv layers are 3x3 stride-1, so the whole network runs
Winograd.  Paper: 1.4x from 512 -> 2048 bits; 1.4x from 1 MB -> 64 MB
and *no further benefit* beyond 64 MB — Winograd's cache requirements
are modest compared to im2col+GEMM (no 9x im2col expansion).
"""

from conftest import banner, run_once

from repro.core import format_table, sweep_cache_sizes, sweep_vector_lengths
from repro.machine import sve_gem5
from repro.nets import KernelPolicy

VLENS = [512, 1024, 2048]
CACHES_MB = [1, 8, 64, 128, 256]
PAPER = {"vlen_gain": 1.4, "cache_gain_64": 1.4}


def test_fig10_winograd_vgg16_sweep(benchmark, vgg_net):
    pol = KernelPolicy(gemm="6loop", winograd="stride1")

    def run():
        vl = sweep_vector_lengths(
            vgg_net, VLENS, lambda v: sve_gem5(vlen_bits=v, l2_mb=1), pol
        )
        cache = sweep_cache_sizes(
            vgg_net, CACHES_MB, lambda mb: sve_gem5(vlen_bits=2048, l2_mb=mb), pol
        )
        return vl, cache

    vl, cache = run_once(benchmark, run)
    banner("Fig. 10: Winograd sweep on ARM-SVE @ gem5 (VGG16)")
    print(format_table([
        {"axis": "vlen@1MB", **{str(v): s for v, s in zip(VLENS, vl.speedups())},
         "paper": PAPER["vlen_gain"]},
    ]))
    print(format_table([
        {"axis": "L2@2048b", **{f"{mb}MB": s for mb, s in zip(CACHES_MB, cache.speedups())},
         "paper(1->64MB)": PAPER["cache_gain_64"]},
    ]))
    benchmark.extra_info["vlen_gain"] = vl.speedups()[-1]
    benchmark.extra_info["cache_speedups"] = dict(zip(CACHES_MB, cache.speedups()))

    vg, cg = vl.speedups(), cache.speedups()
    assert vg == sorted(vg) and vg[-1] > 1.15
    # Shape: solid gains up to 64 MB...
    gain_to_64 = cg[CACHES_MB.index(64)]
    assert gain_to_64 > 1.1
    # ...then diminishing returns.  The paper's curve is flat past 64 MB;
    # ours keeps a modest tail because VGG16's largest transformed-weight
    # panels (512x512x256B = 64 MB) only become fully resident at 128 MB
    # (see EXPERIMENTS.md).  The knee must still be at/below 64 MB.
    tail_gain = cg[-1] / gain_to_64
    assert tail_gain < 1.35
    assert tail_gain < gain_to_64
