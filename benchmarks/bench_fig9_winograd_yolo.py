"""Fig. 9 — vector lengths and L2 sizes with Winograd, YOLOv3 @ gem5-SVE.

Winograd for 3x3 stride-1 layers, optimized im2col+GEMM otherwise
(paper's Section VII-B configuration), first 20 layers of YOLOv3.
Paper: 1.4x from 512 -> 2048 bits at 1 MB; 1.75x from 1 MB -> 256 MB
(YOLOv3 keeps benefiting from large caches because several layers still
run im2col+GEMM).
"""

from conftest import banner, run_once

from repro.core import format_table, sweep_cache_sizes, sweep_vector_lengths
from repro.machine import sve_gem5
from repro.nets import KernelPolicy

VLENS = [512, 1024, 2048]
CACHES_MB = [1, 8, 64, 256]
N_LAYERS = 20
PAPER = {"vlen_gain": 1.4, "cache_gain": 1.75}


def test_fig9_winograd_yolov3_sweep(benchmark, yolo_net):
    pol = KernelPolicy(gemm="6loop", winograd="stride1")

    def run():
        vl = sweep_vector_lengths(
            yolo_net, VLENS, lambda v: sve_gem5(vlen_bits=v, l2_mb=1), pol, N_LAYERS
        )
        cache = sweep_cache_sizes(
            yolo_net, CACHES_MB, lambda mb: sve_gem5(vlen_bits=2048, l2_mb=mb),
            pol, N_LAYERS,
        )
        return vl, cache

    vl, cache = run_once(benchmark, run)
    banner("Fig. 9: Winograd sweep on ARM-SVE @ gem5 (YOLOv3, 20 layers)")
    print(format_table([
        {"axis": "vlen@1MB", **{str(v): s for v, s in zip(VLENS, vl.speedups())},
         "paper": PAPER["vlen_gain"]},
    ]))
    print(format_table([
        {"axis": "L2@2048b", **{f"{mb}MB": s for mb, s in zip(CACHES_MB, cache.speedups())},
         "paper": PAPER["cache_gain"]},
    ]))
    benchmark.extra_info["vlen_gain"] = vl.speedups()[-1]
    benchmark.extra_info["cache_gain"] = cache.speedups()[-1]

    vg, cg = vl.speedups(), cache.speedups()
    assert vg == sorted(vg) and vg[-1] > 1.2  # longer vectors pay off
    assert all(b >= a * 0.99 for a, b in zip(cg, cg[1:]))
    assert cg[-1] > 1.1  # caches keep helping (im2col layers remain)
