"""Table II — 6-loop vs 3-loop GEMM on RISC-V Vector, per block size.

The paper simulates the first 4 convolutional layers of YOLOv3 on
RVV @ gem5 (1 MB L2, 8 lanes) and finds the BLIS-like 6-loop GEMM never
beats the optimized 3-loop GEMM: normalized performance 0.90-0.98, best
at blockM x blockN x blockK = 16 x 512 x 128.
"""

from conftest import banner, run_once

from repro.core import format_table
from repro.kernels import PAPER_BLOCK_SIZES
from repro.nets import KernelPolicy
from repro.machine import rvv_gem5

#: Table II of the paper: block sizes -> normalized performance.
PAPER_TABLE2 = {
    (128, 1024, 256): 0.90,
    (16, 1024, 128): 0.95,
    (16, 512, 128): 0.98,
    (16, 512, 256): 0.96,
    (32, 512, 128): 0.97,
    (64, 1024, 128): 0.95,
}

#: The paper's Table II workload: first 4 layers of YOLOv3.
N_LAYERS = 4


def test_table2_block_sizes(benchmark, yolo_net):
    machine = rvv_gem5(vlen_bits=512, lanes=8, l2_mb=1)

    def run():
        base = yolo_net.simulate(
            machine, KernelPolicy(gemm="3loop"), n_layers=N_LAYERS
        ).cycles
        rows = []
        for blocks in PAPER_BLOCK_SIZES:
            cycles = yolo_net.simulate(
                machine,
                KernelPolicy(gemm="6loop", blocks=blocks),
                n_layers=N_LAYERS,
            ).cycles
            key = (blocks.m, blocks.n, blocks.k)
            rows.append(
                {
                    "block sizes": f"{blocks.m}x{blocks.n}x{blocks.k}",
                    "normalized perf": base / cycles,
                    "paper": PAPER_TABLE2[key],
                }
            )
        return rows

    rows = run_once(benchmark, run)
    banner("Table II: 6-loop vs 3-loop on RVV @ gem5 (YOLOv3, 4 layers)")
    print(format_table(rows))

    perfs = [r["normalized perf"] for r in rows]
    # Shape: BLIS-like optimizations do NOT pay off on RVV — the 6-loop
    # implementation is at best on par with the 3-loop one.
    assert max(perfs) <= 1.05
    assert min(perfs) >= 0.75  # and not catastrophically worse either
    # The paper's optimal block size is among our best two.
    best = sorted(rows, key=lambda r: -r["normalized perf"])[:2]
    assert any(r["block sizes"] == "16x512x128" for r in best) or max(perfs) > 0.95
