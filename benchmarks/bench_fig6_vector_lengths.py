"""Fig. 6 — impact of vector length on RISC-V Vector @ gem5.

YOLOv3 (first 20 layers), constant 1 MB L2 and 8 vector lanes, vector
length swept 512 -> 16384 bits.  Paper: performance improves ~2.5x and
saturates beyond the 8192-bit vector length (because the L2 miss rate
climbs, Table III).
"""

from conftest import banner, run_once

from repro.core import format_series, sweep_vector_lengths
from repro.machine import rvv_gem5
from repro.nets import KernelPolicy

VLENS = [512, 1024, 2048, 4096, 8192, 16384]
PAPER_SPEEDUP_512_TO_16384 = 2.5
N_LAYERS = 20


def test_fig6_vector_length_sweep(benchmark, yolo_net):
    res = run_once(
        benchmark,
        lambda: sweep_vector_lengths(
            yolo_net,
            VLENS,
            lambda v: rvv_gem5(vlen_bits=v, lanes=8, l2_mb=1),
            KernelPolicy(gemm="3loop"),
            n_layers=N_LAYERS,
        ),
    )
    speed = res.speedups()
    banner("Fig. 6: vector-length sweep on RVV @ gem5 (YOLOv3, 20 layers)")
    print(format_series("speedup vs 512-bit", VLENS, speed, "vlen_bits", "speedup"))
    print(f"\npaper: 512->16384 = {PAPER_SPEEDUP_512_TO_16384}x, saturating >= 8192-bit")
    benchmark.extra_info["speedups"] = dict(zip(VLENS, speed))

    # Shape checks: substantial gains that saturate at long vectors.
    assert speed[VLENS.index(8192)] > 2.0  # paper: ~2.5x by 8192-bit
    # Monotone non-trivial growth up to 8192...
    for a, b in zip(speed[:4], speed[1:5]):
        assert b > a * 0.98
    # ...then saturation: 16384-bit buys (almost) nothing more.
    gain_tail = speed[-1] / speed[-2]
    assert 0.8 < gain_tail < 1.15
