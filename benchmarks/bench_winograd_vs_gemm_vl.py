"""Section VII-B (closing) — VGG16: Winograd vs im2col+GEMM per vector
length on ARM-SVE @ gem5 with 1 MB L2.

Paper: Winograd improves VGG16 by 1.4x, 1.5x and 1.3x at 512-, 1024-
and 2048-bit vector lengths respectively — "a good alternative to
im2col+GEMM for any vector length".
"""

from conftest import banner, run_once

from repro.core import format_table
from repro.machine import sve_gem5
from repro.nets import KernelPolicy

PAPER = {512: 1.4, 1024: 1.5, 2048: 1.3}


def test_winograd_vs_gemm_per_vlen(benchmark, vgg_net):
    def run():
        out = {}
        for vlen in PAPER:
            m = sve_gem5(vlen_bits=vlen, l2_mb=1)
            base = vgg_net.simulate(m, KernelPolicy(gemm="6loop", winograd="off"))
            wino = vgg_net.simulate(m, KernelPolicy(gemm="6loop", winograd="stride1"))
            out[vlen] = base.cycles / wino.cycles
        return out

    ratios = run_once(benchmark, run)
    banner("Section VII-B: VGG16 Winograd speedup per vector length (1 MB L2)")
    print(
        format_table(
            [
                {"vlen": f"{v}-bit", "winograd speedup": r, "paper": PAPER[v]}
                for v, r in ratios.items()
            ]
        )
    )
    benchmark.extra_info.update({str(k): v for k, v in ratios.items()})

    # Shape: Winograd wins at every vector length, by a moderate factor.
    for v, r in ratios.items():
        assert 1.1 < r < 2.2, f"vlen {v}: {r}"
