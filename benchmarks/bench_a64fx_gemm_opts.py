"""Section VI-C — algorithmic optimizations with ARM-SVE.

Paper, on the A64FX processor with YOLOv3:
* 6-loop (BLIS-like) GEMM ~2x faster than the optimized 3-loop GEMM
  (caches + hardware/software prefetching pay off, unlike on RVV);
* optimized 6-loop ~32x faster than the naive Darknet GEMM;
* on ARM-SVE @ gem5 (512-bit, no prefetch) the 6-loop advantage shrinks
  to ~15 %.
"""

from conftest import banner, run_once

from repro.machine import a64fx, sve_gem5
from repro.nets import KernelPolicy

PAPER = {"6loop_vs_3loop_a64fx": 2.0, "6loop_vs_naive_a64fx": 32.0, "gem5_sve": 1.15}


def test_a64fx_gemm_optimizations(benchmark, yolo_net):
    def run():
        fx = a64fx()
        naive = yolo_net.simulate(fx, KernelPolicy(gemm="naive")).cycles
        three = yolo_net.simulate(fx, KernelPolicy(gemm="3loop")).cycles
        six = yolo_net.simulate(fx, KernelPolicy(gemm="6loop")).cycles
        g5 = sve_gem5(512, l2_mb=1)
        g5_three = yolo_net.simulate(g5, KernelPolicy(gemm="3loop"), n_layers=20).cycles
        g5_six = yolo_net.simulate(g5, KernelPolicy(gemm="6loop"), n_layers=20).cycles
        return naive, three, six, g5_three, g5_six

    naive, three, six, g5_three, g5_six = run_once(benchmark, run)
    r63 = three / six
    rnaive = naive / six
    rg5 = g5_three / g5_six
    banner("Section VI-C: GEMM optimizations on A64FX / ARM-SVE @ gem5 (YOLOv3)")
    print(f"A64FX 6-loop vs 3-loop : {r63:.2f}x   (paper ~{PAPER['6loop_vs_3loop_a64fx']}x)")
    print(f"A64FX 6-loop vs naive  : {rnaive:.1f}x  (paper ~{PAPER['6loop_vs_naive_a64fx']}x)")
    print(f"gem5-SVE 6- vs 3-loop  : {rg5:.2f}x   (paper ~{PAPER['gem5_sve']}x)")
    benchmark.extra_info.update(
        {"a64fx_6v3": r63, "a64fx_naive": rnaive, "gem5_sve_6v3": rg5}
    )

    # Shape: BLIS-like optimizations clearly pay off on A64FX...
    assert r63 > 1.3
    # ...the full optimization stack is a huge win over naive...
    assert 15 < rnaive < 80
    # ...and the gem5 advantage is much smaller (no prefetching), yet >= 1.
    assert 0.95 < rg5 < 1.45
    assert rg5 < r63
