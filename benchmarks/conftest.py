"""Shared fixtures and helpers for the reproduction benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper:
it runs the corresponding simulation sweep once (timed by
pytest-benchmark), prints the same rows/series the paper reports next to
the paper's numbers, and asserts the qualitative *shape* (who wins,
direction of trends) — not absolute cycle counts, which belong to gem5
and the authors' A64FX testbed (see EXPERIMENTS.md).

Parallelism and memoization are environment-driven so the scripts need
no changes (see docs/PERFORMANCE.md):

* ``REPRO_JOBS=N``     — sweeps fan design points over N workers
  (``sweep(..., jobs=None)`` consults this variable);
* ``REPRO_SIMCACHE=1`` — ``Network.simulate`` memoizes results under
  ``.simcache/`` so re-runs are nearly free.
"""

import os

import pytest

from repro.core.parallel import JOBS_ENV, resolve_jobs
from repro.core.simcache import cache_dir, cache_enabled
from repro.nets import vgg16, yolov3, yolov3_tiny


@pytest.fixture(scope="session", autouse=True)
def _report_accel_env():
    """Print the effective jobs/simcache settings once per session."""
    jobs = resolve_jobs(None)
    if jobs > 1 or cache_enabled(None):
        print(
            f"\n[benchmarks] {JOBS_ENV}={os.environ.get(JOBS_ENV, '')!r} "
            f"-> jobs={jobs}, simcache="
            f"{'on (' + cache_dir() + ')' if cache_enabled(None) else 'off'}"
        )
    yield


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture(scope="session")
def yolo_net():
    """YOLOv3 at the paper's 608x608 evaluation resolution."""
    return yolov3()


@pytest.fixture(scope="session")
def tiny_net():
    """YOLOv3-tiny at 416x416."""
    return yolov3_tiny()


@pytest.fixture(scope="session")
def vgg_net():
    """VGG16 at 224x224."""
    return vgg16()


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)
