"""Ablation — does Fig. 7 survive realistic large-cache latencies?

The paper keeps the L2 latency at the CACTI-derived 1 MB value
(12 cycles) across the whole 1-256 MB sweep and notes that "larger
caches are beneficial, *given that their latency remains low*".  This
ablation re-runs the sweep with a CACTI-like latency growth to quantify
how much of the benefit survives.
"""

from conftest import banner, run_once

from repro.core import format_table, sweep_cache_sizes
from repro.machine import rvv_gem5
from repro.nets import KernelPolicy

CACHES_MB = [1, 8, 64, 256]
N_LAYERS = 20


def test_cache_latency_model_ablation(benchmark, yolo_net):
    pol = KernelPolicy(gemm="3loop")

    def run():
        out = {}
        for model in ("constant", "cacti"):
            out[model] = sweep_cache_sizes(
                yolo_net,
                CACHES_MB,
                lambda mb, mdl=model: rvv_gem5(
                    vlen_bits=8192, lanes=8, l2_mb=mb, latency_model=mdl
                ),
                pol,
                N_LAYERS,
            )
        return out

    sweeps = run_once(benchmark, run)
    banner("Ablation: L2 latency model over the Fig. 7 cache sweep (8192-bit RVV)")
    rows = [
        {
            "latency model": model,
            **{f"{mb}MB": s for mb, s in zip(CACHES_MB, res.speedups())},
        }
        for model, res in sweeps.items()
    ]
    print(format_table(rows))
    print(
        "\nL2 latencies (cacti): "
        + ", ".join(
            f"{mb}MB={rvv_gem5(l2_mb=mb, latency_model='cacti').l2.latency}cy"
            for mb in CACHES_MB
        )
    )

    const = sweeps["constant"].speedups()
    cacti = sweeps["cacti"].speedups()
    # Shape: with realistic latency growth the big-cache benefit shrinks
    # but capacity still wins overall.
    assert cacti[-1] < const[-1]
    assert cacti[-1] > 1.0
