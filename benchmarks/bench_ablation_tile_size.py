"""Ablation — Winograd tile algorithm: F(2,3) / F(4,3) / F(6,3).

Section IV-B: "Vectorizing the transformations with longer vector
lengths would require a larger tile size, however, in this case, the
numerical accuracy would drop" — which is why the paper keeps 8x8 tiles
(F(6x6,3x3)) and parallelizes *across* tiles instead.  This ablation
quantifies both sides: multiplication reduction vs fp32 accuracy.
"""

import numpy as np
from conftest import banner, run_once

from repro.core import format_table
from repro.kernels.winograd import winograd_matrices


def _fp32_error(m: int, r: int = 3, trials: int = 10) -> float:
    t = winograd_matrices(m, r)
    rng = np.random.default_rng(0)
    worst = 0.0
    for _ in range(trials):
        d = rng.standard_normal((t.alpha, t.alpha)).astype(np.float32)
        g = rng.standard_normal((r, r)).astype(np.float32)
        u = (t.G @ g.astype(np.float64) @ t.G.T).astype(np.float32)
        v = (t.Bt @ d.astype(np.float64) @ t.Bt.T).astype(np.float32)
        y = (t.A.T @ (u * v).astype(np.float64) @ t.A).astype(np.float32)
        ref = np.zeros((t.m, t.m))
        for i in range(t.m):
            for j in range(t.m):
                ref[i, j] = (
                    d[i : i + r, j : j + r].astype(np.float64)
                    * g.astype(np.float64)
                ).sum()
        worst = max(worst, float(np.abs(y - ref).max() / (np.abs(ref).max() + 1e-9)))
    return worst


def test_tile_algorithm_ablation(benchmark):
    def run():
        rows = []
        for m in (2, 4, 6, 8, 10):
            t = winograd_matrices(m, 3)
            rows.append(
                {
                    "algorithm": f"F({m}x{m},3x3)",
                    "tile": f"{t.alpha}x{t.alpha}",
                    "mul reduction": t.mul_reduction_2d,
                    "fp32 rel err": _fp32_error(m),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    banner("Ablation: Winograd tile size — multiplication reduction vs accuracy")
    print(format_table(rows))

    reductions = [r["mul reduction"] for r in rows]
    errors = [r["fp32 rel err"] for r in rows]
    # Shape: bigger tiles save more multiplications...
    assert reductions == sorted(reductions)
    # ...but accuracy degrades sharply past the paper's 8x8 tile.
    assert errors[-1] > 10 * errors[2]  # F(10) far worse than F(6)
    assert errors[2] < 1e-3  # F(6x6,3x3) is CNN-safe in fp32
