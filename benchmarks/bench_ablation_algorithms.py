"""Ablation — the full convolution-algorithm landscape vs kernel size.

Section II-B(c): "no one-size-fits-all convolution implementation
exists: Winograd works best with convolutional layers with 3x3 or 5x5
kernel sizes, FFT works best with layers with large kernel sizes, while
the Direct algorithm is better for 1x1 kernel sizes."  The paper
implements GEMM and Winograd; this extension adds FFT and regenerates
the crossover table on the A64FX model.  (For 1x1 kernels the im2col
step degenerates to a reshape, i.e. the direct algorithm.)
"""

from conftest import banner, run_once

from repro.core import format_table, measured_choice_all
from repro.kernels import ConvSpec
from repro.machine import a64fx

KERNEL_SIZES = [(1, 1), (3, 1), (3, 2), (5, 1), (7, 1), (11, 1)]


def test_algorithm_landscape(benchmark):
    machine = a64fx()

    def run():
        rows = []
        for k, s in KERNEL_SIZES:
            spec = ConvSpec(32, 56, 56, 32, k, s, k // 2)
            r = measured_choice_all(spec, machine)
            row = {"kernel": f"{k}x{k} s{s}", "winner": r["winner"]}
            row.update({a: c for a, c in r["cycles"].items()})
            rows.append(row)
        return rows

    rows = run_once(benchmark, run)
    banner("Ablation: convolution-algorithm landscape on A64FX (32ch @56x56)")
    print(format_table(rows, columns=["kernel", "im2col", "winograd", "fft", "winner"]))

    by_kernel = {r["kernel"]: r for r in rows}
    # Shape, per the paper's taxonomy:
    assert by_kernel["1x1 s1"]["winner"] == "im2col"  # direct/GEMM for 1x1
    assert by_kernel["3x3 s1"]["winner"] == "winograd"  # Winograd for 3x3 s1
    # FFT for large kernels.  7x7 sits right on the 64->128-point plan
    # boundary for this input size and can tip either way; 5x5 (64-point
    # plan) and 11x11 (where GEMM's k^2 growth dominates any plan) are
    # the robust FFT wins.
    assert by_kernel["5x5 s1"]["winner"] == "fft"
    assert by_kernel["11x11 s1"]["winner"] == "fft"
    # FFT cost is set by the plane, not the kernel: flat in k for equal
    # plan sizes (7x7 and 11x11 both round up to the 128-point plan).
    assert by_kernel["11x11 s1"]["fft"] < 1.2 * by_kernel["7x7 s1"]["fft"]
    # im2col+GEMM cost grows ~k^2.
    assert by_kernel["11x11 s1"]["im2col"] > 5 * by_kernel["3x3 s1"]["im2col"]
