"""Fig. 7 — impact of the L2 cache size on RISC-V Vector @ gem5.

YOLOv3 (first 20 layers), 8 vector lanes, L2 swept 1 MB -> 256 MB for
several vector lengths.  Paper: up to ~1.5x for vector lengths <= 4096
bits and 1.7-1.9x for 8192/16384 bits; with a 256 MB L2 the miss rates
collapse to ~2.4-2.6 %.
"""

from conftest import banner, run_once

from repro.core import format_table, sweep_cache_sizes
from repro.machine import rvv_gem5
from repro.nets import KernelPolicy

CACHES_MB = [1, 8, 64, 256]
VLENS = [512, 4096, 16384]
N_LAYERS = 20
PAPER = {512: 1.5, 4096: 1.5, 16384: 1.9}


def test_fig7_cache_size_sweep(benchmark, yolo_net):
    def run():
        out = {}
        for vlen in VLENS:
            out[vlen] = sweep_cache_sizes(
                yolo_net,
                CACHES_MB,
                lambda mb, v=vlen: rvv_gem5(vlen_bits=v, lanes=8, l2_mb=mb),
                KernelPolicy(gemm="3loop"),
                n_layers=N_LAYERS,
            )
        return out

    sweeps = run_once(benchmark, run)
    banner("Fig. 7: L2 cache-size sweep on RVV @ gem5 (YOLOv3, 20 layers)")
    rows = []
    for vlen, res in sweeps.items():
        speed = res.speedups()
        rows.append(
            {
                "vlen": f"{vlen}-bit",
                **{f"{mb}MB": s for mb, s in zip(CACHES_MB, speed)},
                "miss@256MB %": 100 * res.miss_rates()[-1],
                "paper 1->256MB": PAPER[vlen],
            }
        )
    print(format_table(rows))
    benchmark.extra_info["gain_16384"] = sweeps[16384].speedups()[-1]

    for vlen, res in sweeps.items():
        speed = res.speedups()
        # Shape: larger caches help, monotonically.
        assert all(b >= a * 0.99 for a, b in zip(speed, speed[1:]))
        assert speed[-1] > 1.05
        # Miss rate collapses at 256 MB (paper: ~2.4-2.6%).
        assert res.miss_rates()[-1] < 0.10
    # Longer vectors benefit more from big caches (paper: 1.7-1.9x vs 1.5x).
    assert sweeps[16384].speedups()[-1] > sweeps[512].speedups()[-1]
    assert sweeps[16384].speedups()[-1] > 1.4
