"""Table IV — arithmetic intensity and sustained performance per layer.

The 14 discrete convolutional-layer GEMM shapes of YOLOv3 on A64FX.
The AI column is exact (same formula); the sustained %-of-peak column is
simulated and compared against the paper's trend: layers with small
weight matrices (low AI) sustain markedly less of peak.
"""

from conftest import banner, run_once

from repro.core import format_table, roofline_table


def test_table4_roofline(benchmark):
    rows = run_once(benchmark, roofline_table)
    banner("Table IV: arithmetic intensity and sustained performance (A64FX)")
    print(
        format_table(
            [
                {
                    "layer": r.layer,
                    "M": r.M,
                    "N": r.N,
                    "K": r.K,
                    "AI": r.ai,
                    "AI paper": r.ai_paper,
                    "%peak": r.pct_peak,
                    "%peak paper": r.pct_peak_paper,
                }
                for r in rows
            ]
        )
    )

    by_layer = {r.layer: r for r in rows}
    # AI matches the paper exactly (same formula, rel tolerance covers
    # the paper's rounding).
    for r in rows:
        assert abs(r.ai - r.ai_paper) / r.ai_paper < 0.05
    # Trend: the low-AI layers (L1, L3) sustain the least; high-AI
    # layers sustain much more (paper: 46/50 % vs 81-91 %).
    low = (by_layer["L1"].pct_peak + by_layer["L3"].pct_peak) / 2
    high = (by_layer["L10"].pct_peak + by_layer["L62"].pct_peak) / 2
    assert low < high
    assert by_layer["L1"].pct_peak == min(r.pct_peak for r in rows)
    # Everything sustains a meaningful fraction of peak.
    for r in rows:
        assert 10 < r.pct_peak <= 100
