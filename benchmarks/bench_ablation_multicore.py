"""Extension — multi-core scaling of the optimized kernels.

The paper's study is single-core; its conclusion calls for exploring
"additional, influential architectural and micro-architectural
features".  This extension scales the co-design question out: with
data-parallel convolution over N cores sharing the L2 and DRAM
bandwidth, how do the vector-length choices of Fig. 6 interact with the
core count?
"""

from conftest import banner, run_once

from repro.core import format_table, scaling_curve
from repro.machine import rvv_gem5
from repro.nets import KernelPolicy

CORES = (1, 2, 4, 8)
N_LAYERS = 8


def test_multicore_scaling(benchmark, yolo_net):
    def run():
        out = {}
        for vlen in (2048, 16384):
            curve = scaling_curve(
                yolo_net,
                rvv_gem5(vlen_bits=vlen, lanes=8, l2_mb=8),
                KernelPolicy(gemm="3loop"),
                CORES,
                n_layers=N_LAYERS,
            )
            out[vlen] = [r.speedup_vs_1 for r in curve]
        return out

    curves = run_once(benchmark, run)
    banner("Extension: multi-core scaling on RVV (YOLOv3, 8 layers, shared "
           "L2 + DRAM bandwidth)")
    print(
        format_table(
            [
                {"vlen": f"{vlen}-bit",
                 **{f"{c} cores": s for c, s in zip(CORES, speeds)}}
                for vlen, speeds in curves.items()
            ]
        )
    )
    print("\nco-design takeaway: longer vectors raise per-core bandwidth "
          "demand, so they stop scaling at fewer cores.")

    short, long_ = curves[2048], curves[16384]
    # Both scale initially...
    assert short[1] > 1.4 and long_[1] > 1.3
    # ...the short vector keeps scaling close to linear at 8 cores...
    assert short[-1] > 5.0
    # ...while the long vector saturates earlier.
    assert long_[-1] < short[-1]
