"""Ablation — VPU integration style: L2-attached vs L1-fed.

DESIGN.md calls out the VPU integration as the root cause of the
RVV/SVE divergence on BLIS-like optimizations (Sections III-A, VI-A):
the RVV VPU reads via the L2 (through a 2 KB VectorCache), so L1
blocking buys nothing.  This ablation re-runs the 6-loop-vs-3-loop
comparison on the RVV machine with a counterfactual L1-fed VPU.
"""

import dataclasses

from conftest import banner, run_once

from repro.core import format_table
from repro.machine import rvv_gem5
from repro.nets import KernelPolicy

N_LAYERS = 8


def _with_port(machine, port):
    vpu = dataclasses.replace(
        machine.vpu, mem_port=port, vector_cache_bytes=2048 if port == "L2" else 0
    )
    return machine.with_(vpu=vpu)


def test_vpu_integration_ablation(benchmark, yolo_net):
    base = rvv_gem5(vlen_bits=512, lanes=8, l2_mb=1)

    def run():
        out = {}
        for port in ("L2", "L1"):
            m = _with_port(base, port)
            three = yolo_net.simulate(m, KernelPolicy(gemm="3loop"), n_layers=N_LAYERS)
            six = yolo_net.simulate(m, KernelPolicy(gemm="6loop"), n_layers=N_LAYERS)
            out[port] = three.cycles / six.cycles
        return out

    speedups = run_once(benchmark, run)
    banner("Ablation: 6-loop speedup vs VPU integration (RVV machine)")
    print(
        format_table(
            [
                {"VPU port": f"VPU<-{port}", "6loop speedup vs 3loop": s}
                for port, s in speedups.items()
            ]
        )
    )

    # Shape: with the VPU on the L2, packing/blocking does not pay
    # (paper Table II); feed the same VPU from the L1 and it starts to.
    assert speedups["L1"] > speedups["L2"]
    assert speedups["L2"] <= 1.02
