"""Extension — inference over a stream of images.

Section VI of the paper excludes initialization cycles because the
overhead "is not incurred when continuously running inference over a
stream of images".  This bench makes that argument quantitative: with a
resident network, steady-state images are cheaper than the first (warm
weights/workspace), and the gap depends on whether the working set fits
the L2 — one more face of the Fig. 7 capacity question.
"""

from conftest import banner, run_once

from repro.core import format_table
from repro.machine import rvv_gem5
from repro.nets import KernelPolicy

N_IMAGES = 3
N_LAYERS = 10


def test_streaming_steady_state(benchmark, tiny_net):
    def run():
        out = {}
        for mb in (1, 64):
            per = tiny_net.simulate_stream(
                rvv_gem5(vlen_bits=2048, lanes=8, l2_mb=mb),
                KernelPolicy(gemm="3loop"),
                n_images=N_IMAGES,
                n_layers=N_LAYERS,
            )
            out[mb] = per
        return out

    streams = run_once(benchmark, run)
    banner("Extension: YOLOv3-tiny inference over an image stream (RVV)")
    rows = []
    for mb, per in streams.items():
        rows.append(
            {
                "L2": f"{mb}MB",
                **{f"img{i}": st.cycles for i, st in enumerate(per)},
                "steady miss %": 100 * per[-1].l2_miss_rate,
                "cold/steady": per[0].cycles / per[-1].cycles,
            }
        )
    print(format_table(rows))

    for mb, per in streams.items():
        # Steady state: images after the first cost the same...
        assert per[2].cycles == min(st.cycles for st in per) * 1.001 or (
            abs(per[2].cycles - per[1].cycles) / per[1].cycles < 0.02
        )
        # ...and never more than the cold first image.
        assert per[1].cycles <= per[0].cycles
    # A large L2 retains the working set between images.
    assert streams[64][-1].l2_miss_rate < streams[1][-1].l2_miss_rate
    assert streams[64][-1].cycles < streams[1][-1].cycles
