"""Fig. 8 — vector lengths and L2 cache sizes on ARM-SVE @ gem5.

YOLOv3 (first 20 layers) with the optimized 6-loop GEMM.  Paper: at
1 MB, 512 -> 2048 bits improves 1.34x; at 2048 bits, 1 MB -> 256 MB
improves 1.6x.
"""

from conftest import banner, run_once

from repro.core import format_table, sweep_cache_sizes, sweep_vector_lengths
from repro.machine import sve_gem5
from repro.nets import KernelPolicy

VLENS = [512, 1024, 2048]
CACHES_MB = [1, 8, 64, 256]
N_LAYERS = 20
PAPER = {"vlen_gain": 1.34, "cache_gain": 1.6}


def test_fig8_sve_sweep(benchmark, yolo_net):
    pol = KernelPolicy(gemm="6loop")

    def run():
        vl = sweep_vector_lengths(
            yolo_net, VLENS, lambda v: sve_gem5(vlen_bits=v, l2_mb=1), pol, N_LAYERS
        )
        cache = sweep_cache_sizes(
            yolo_net,
            CACHES_MB,
            lambda mb: sve_gem5(vlen_bits=2048, l2_mb=mb),
            pol,
            N_LAYERS,
        )
        return vl, cache

    vl, cache = run_once(benchmark, run)
    banner("Fig. 8: vector length x L2 size on ARM-SVE @ gem5 (YOLOv3, 20 layers)")
    print(
        format_table(
            [
                {"axis": "vlen@1MB", **{str(v): s for v, s in zip(VLENS, vl.speedups())},
                 "paper(512->2048)": PAPER["vlen_gain"]},
            ]
        )
    )
    print(
        format_table(
            [
                {"axis": "L2@2048b", **{f"{mb}MB": s for mb, s in zip(CACHES_MB, cache.speedups())},
                 "paper(1->256MB)": PAPER["cache_gain"]},
            ]
        )
    )
    benchmark.extra_info["vlen_gain"] = vl.speedups()[-1]
    benchmark.extra_info["cache_gain"] = cache.speedups()[-1]

    # Shape: both axes help, with moderate (not RVV-sized) VL gains.
    vg = vl.speedups()
    cg = cache.speedups()
    assert vg == sorted(vg) and 1.15 < vg[-1] < 2.2
    assert all(b >= a * 0.99 for a, b in zip(cg, cg[1:]))
    assert cg[-1] > 1.1
