"""Ablation — GEMM unroll factor on RVV (Section VI-A).

The paper tunes the 3-loop unroll by utilizing up to 32 vector
registers: "no significant improvement beyond utilizing 16 registers
... by utilizing the 32 register, we experienced a performance drop by
~15 % due to register spilling."
"""

from conftest import banner, run_once

from repro.core import format_table
from repro.machine import rvv_gem5
from repro.nets import KernelPolicy

UNROLLS = [4, 8, 16, 32]
N_LAYERS = 8


def test_unroll_factor_ablation(benchmark, yolo_net):
    machine = rvv_gem5(vlen_bits=512, lanes=8, l2_mb=1)

    def run():
        return {
            u: yolo_net.simulate(
                machine, KernelPolicy(gemm="3loop", unroll=u), n_layers=N_LAYERS
            ).cycles
            for u in UNROLLS
        }

    cycles = run_once(benchmark, run)
    base = cycles[16]
    banner("Ablation: 3-loop unroll factor on RVV @ gem5 (YOLOv3, 8 layers)")
    print(
        format_table(
            [
                {"unroll": u, "cycles": c, "relative to u16": c / base}
                for u, c in cycles.items()
            ]
        )
    )

    # Shape: 16 is the sweet spot; 32 spills and loses performance.
    assert cycles[16] < cycles[4]
    assert cycles[16] < cycles[8]
    assert cycles[32] > cycles[16]
    drop = cycles[32] / cycles[16]
    assert 1.02 < drop < 1.6  # paper: ~15 % drop
