"""Simulator self-performance: wall-clock of the simulation pipeline.

Unlike the other bench modules (which reproduce the *paper's* numbers),
this one tracks the *repository's own* performance trajectory: how fast
one design point simulates, how a small sweep scales with parallel
workers, and how much the persistent simcache saves on re-runs.  It
emits one machine-parseable ``BENCH {json}`` row per run so successive
PRs can be compared (grep the pytest output for ``^BENCH ``).

Kept intentionally small (yolov3-tiny, few layers) so it adds seconds,
not minutes, to the suite; the headline acceptance numbers for large
sweeps are recorded in docs/PERFORMANCE.md.
"""

import gc
import json
import os
import shutil
import tempfile
import time

from conftest import banner, run_once

from repro.core import (
    sweep_cache_sizes,
    sweep_lanes,
    sweep_vector_lengths,
    tracecache,
)
from repro.machine import rvv_gem5
from repro.machine.simulator import SimStats
from repro.nets import KernelPolicy

_VLENS = [512, 1024, 2048, 4096]
_POLICY = KernelPolicy(gemm="3loop")
_LAYERS = 6


def _machine_for(vlen: int):
    return rvv_gem5(vlen_bits=vlen, lanes=8, l2_mb=1)


def test_simulator_selfperf(benchmark, tiny_net):
    def run():
        # Single design point, serial.
        t0 = time.perf_counter()
        point_stats = tiny_net.simulate(
            _machine_for(2048), _POLICY, n_layers=_LAYERS
        )
        t_point = time.perf_counter() - t0

        # Small sweep, serial vs parallel (jobs from REPRO_JOBS, else 2).
        t0 = time.perf_counter()
        serial = sweep_vector_lengths(
            tiny_net, _VLENS, _machine_for, _POLICY, n_layers=_LAYERS, jobs=1
        )
        t_serial = time.perf_counter() - t0

        jobs = int(os.environ.get("REPRO_JOBS", "0") or "0") or 2
        t0 = time.perf_counter()
        parallel = sweep_vector_lengths(
            tiny_net, _VLENS, _machine_for, _POLICY, n_layers=_LAYERS, jobs=jobs
        )
        t_parallel = time.perf_counter() - t0

        # Cold vs warm simcache, in a throwaway directory.
        tmp = tempfile.mkdtemp(prefix="simcache-bench-")
        old_dir = os.environ.get("REPRO_SIMCACHE_DIR")
        os.environ["REPRO_SIMCACHE_DIR"] = tmp
        try:
            t0 = time.perf_counter()
            sweep_vector_lengths(
                tiny_net, _VLENS, _machine_for, _POLICY,
                n_layers=_LAYERS, jobs=1, use_cache=True,
            )
            t_cold = time.perf_counter() - t0
            t0 = time.perf_counter()
            warm = sweep_vector_lengths(
                tiny_net, _VLENS, _machine_for, _POLICY,
                n_layers=_LAYERS, jobs=1, use_cache=True,
            )
            t_warm = time.perf_counter() - t0
        finally:
            if old_dir is None:
                os.environ.pop("REPRO_SIMCACHE_DIR", None)
            else:
                os.environ["REPRO_SIMCACHE_DIR"] = old_dir
            shutil.rmtree(tmp, ignore_errors=True)

        return (
            point_stats, serial, parallel, warm, jobs,
            t_point, t_serial, t_parallel, t_cold, t_warm,
        )

    (
        point_stats, serial, parallel, warm, jobs,
        t_point, t_serial, t_parallel, t_cold, t_warm,
    ) = run_once(benchmark, run)

    def identical(a, b):
        return all(
            getattr(a, f) == getattr(b, f) for f in SimStats.FIELDS
        ) and a.kernel_cycles == b.kernel_cycles

    par_ok = all(identical(a, b) for a, b in zip(serial.stats, parallel.stats))
    warm_ok = all(identical(a, b) for a, b in zip(serial.stats, warm.stats))

    row = {
        "bench": "simulator_selfperf",
        "point_s": round(t_point, 4),
        "sweep_serial_s": round(t_serial, 4),
        "sweep_parallel_s": round(t_parallel, 4),
        "jobs": jobs,
        "simcache_cold_s": round(t_cold, 4),
        "simcache_warm_s": round(t_warm, 4),
        "parallel_identical": par_ok,
        "warm_identical": warm_ok,
    }
    banner("Simulator self-performance (yolov3-tiny, 6 layers)")
    print(f"single point            : {t_point:.3f}s")
    print(f"4-point sweep, serial   : {t_serial:.3f}s")
    print(f"4-point sweep, jobs={jobs}   : {t_parallel:.3f}s")
    print(f"simcache cold / warm    : {t_cold:.3f}s / {t_warm:.4f}s")
    print("BENCH " + json.dumps(row, sort_keys=True))
    benchmark.extra_info.update(row)

    # Correctness gates: parallel and cached results must be identical.
    assert par_ok and warm_ok
    # A warm cache re-run must be nearly free.
    assert t_warm < 0.5 * t_cold
    # Sanity: the point simulated real work.
    assert point_stats.cycles > 0


#: The paper's Fig. 7 cache axis: the headline beneficiary of trace
#: replay, since every point shares one kernel event stream.
_L2_SWEEP_MB = [1, 2, 4, 8, 16, 32, 64, 256]


def test_sweep_trace_replay(benchmark, yolo_net):
    """Capture-once / replay-many vs per-point simulation, cold & serial.

    Times a Fig.7-style 8-point L2-size sweep of YOLOv3 twice through
    the public ``sweep_cache_sizes`` API: once with tracing disabled
    (the pre-trace-engine baseline, re-running the kernels at every
    point) and once with the capture/replay engine.  Statistics must be
    bitwise identical; the headline number is the speedup.

    ``REPRO_BENCH_SWEEP_LAYERS`` shrinks the layer count for smoke runs
    (CI uses a handful of layers; the acceptance figure in
    docs/PERFORMANCE.md is the default 20).
    """
    n_layers = int(os.environ.get("REPRO_BENCH_SWEEP_LAYERS", "20") or "20")
    policy = KernelPolicy(gemm="3loop")
    def factory(mb):
        return rvv_gem5(vlen_bits=2048, lanes=8, l2_mb=mb)

    def run():
        tracecache.clear_registry()
        # The cyclic GC otherwise charges its pauses to whichever path
        # happens to allocate more at once; disable it while timing.
        gc.disable()
        try:
            t0 = time.perf_counter()
            off = sweep_cache_sizes(
                yolo_net, _L2_SWEEP_MB, factory, policy,
                n_layers=n_layers, jobs=1, use_trace=False,
            )
            t_off = time.perf_counter() - t0
            t0 = time.perf_counter()
            on = sweep_cache_sizes(
                yolo_net, _L2_SWEEP_MB, factory, policy,
                n_layers=n_layers, jobs=1, use_trace=True,
            )
            t_on = time.perf_counter() - t0
        finally:
            gc.enable()
            gc.collect()
            tracecache.clear_registry()
        return off, on, t_off, t_on

    off, on, t_off, t_on = run_once(benchmark, run)

    def hex_identical(a, b):
        return all(
            getattr(a, f).hex() == getattr(b, f).hex() for f in SimStats.FIELDS
        ) and {k: v.hex() for k, v in a.kernel_cycles.items()} == {
            k: v.hex() for k, v in b.kernel_cycles.items()
        }

    identical = all(hex_identical(a, b) for a, b in zip(off.stats, on.stats))
    speedup = t_off / t_on if t_on > 0 else float("inf")

    row = {
        "bench": "sweep_trace_replay",
        "n_points": len(_L2_SWEEP_MB),
        "n_layers": n_layers,
        "sweep_direct_s": round(t_off, 4),
        "sweep_trace_s": round(t_on, 4),
        "speedup": round(speedup, 3),
        "bitwise_identical": identical,
        "sources": on.sources,
    }
    banner(f"Trace-replay sweep (yolov3, {n_layers} layers, 8 L2 points)")
    print(f"per-point (trace off)   : {t_off:.3f}s")
    print(f"capture+replay (on)     : {t_on:.3f}s")
    print(f"speedup                 : {speedup:.2f}x")
    print("BENCH " + json.dumps(row, sort_keys=True))
    benchmark.extra_info.update(row)

    assert identical
    assert on.sources[0] == "captured"
    assert all(s == "replayed" for s in on.sources[1:])
    # Acceptance target is >=3x at 20 layers (docs/PERFORMANCE.md); gate
    # at 2x so machine noise and tiny smoke configs don't flake CI.
    assert speedup >= 2.0


#: The paper's Fig. 6/8 lane axis: priced by deferred-VPU replay since
#: the lane count only changes pricing arithmetic, never the walk.
_LANE_SWEEP = [1, 2, 3, 4, 5, 6, 7, 8]


def test_lane_sweep_trace_replay(benchmark, yolo_net):
    """Deferred-VPU replay vs per-point simulation on a cold lane sweep.

    The lane axis used to decline replay outright (every point re-ran
    the kernels); with deferred pricing classes the 8-point sweep runs
    the kernels once and prices every lane count from the shared
    capture.  Statistics must stay bitwise identical.  The acceptance
    figure (>=2.5x at the default 20 layers) is recorded in
    docs/PERFORMANCE.md; the gate sits at 2x against machine noise.
    """
    n_layers = int(os.environ.get("REPRO_BENCH_SWEEP_LAYERS", "20") or "20")
    policy = KernelPolicy(gemm="3loop")

    def factory(lanes):
        return rvv_gem5(vlen_bits=2048, lanes=lanes, l2_mb=1)

    def run():
        tracecache.clear_registry()
        gc.disable()
        try:
            t0 = time.perf_counter()
            off = sweep_lanes(
                yolo_net, _LANE_SWEEP, factory, policy,
                n_layers=n_layers, jobs=1, use_trace=False,
            )
            t_off = time.perf_counter() - t0
            t0 = time.perf_counter()
            on = sweep_lanes(
                yolo_net, _LANE_SWEEP, factory, policy,
                n_layers=n_layers, jobs=1, use_trace=True,
            )
            t_on = time.perf_counter() - t0
        finally:
            gc.enable()
            gc.collect()
            tracecache.clear_registry()
        return off, on, t_off, t_on

    off, on, t_off, t_on = run_once(benchmark, run)

    def hex_identical(a, b):
        return all(
            getattr(a, f).hex() == getattr(b, f).hex() for f in SimStats.FIELDS
        ) and {k: v.hex() for k, v in a.kernel_cycles.items()} == {
            k: v.hex() for k, v in b.kernel_cycles.items()
        }

    identical = all(hex_identical(a, b) for a, b in zip(off.stats, on.stats))
    speedup = t_off / t_on if t_on > 0 else float("inf")

    row = {
        "bench": "lane_sweep_trace_replay",
        "n_points": len(_LANE_SWEEP),
        "n_layers": n_layers,
        "sweep_direct_s": round(t_off, 4),
        "sweep_trace_s": round(t_on, 4),
        "speedup": round(speedup, 3),
        "bitwise_identical": identical,
        "sources": on.sources,
    }
    banner(f"Lane-sweep replay (yolov3, {n_layers} layers, 8 lane points)")
    print(f"per-point (trace off)   : {t_off:.3f}s")
    print(f"capture+replay (on)     : {t_on:.3f}s")
    print(f"speedup                 : {speedup:.2f}x")
    print("BENCH " + json.dumps(row, sort_keys=True))
    benchmark.extra_info.update(row)

    assert identical
    assert on.sources[0] == "captured"
    assert all(s == "replayed" for s in on.sources[1:])
    assert speedup >= 2.0


def test_vectorized_point_pass(benchmark, yolo_net):
    """NumPy column pricing vs the per-event Python loop, same program.

    Times ``_point_pass_fast`` (per-event Python loop) against
    ``_point_pass_vec`` (``np.add.accumulate`` / ``np.bincount``) on
    the identical captured program, at a conflict-free design point.
    The compile (``_compile_fast``) is timed and reported separately:
    production (``_run_points``) pays it once per L2 budget per sweep
    group, so the per-point comparison is pass vs pass.  The target on
    the pass itself is >=3x (docs/PERFORMANCE.md); the gate sits at 2x
    against machine noise.
    """
    from repro.machine.replay import (
        _compile_fast,
        _GroupCapture,
        _point_pass_fast,
        _point_pass_vec,
    )

    n_layers = int(os.environ.get("REPRO_BENCH_SWEEP_LAYERS", "20") or "20")
    policy = KernelPolicy(gemm="3loop")
    machines = [rvv_gem5(vlen_bits=2048, lanes=l, l2_mb=256) for l in (2, 4, 8)]
    reps = 3

    def run():
        cap = _GroupCapture(machines[0], defer_vpu=True)
        yolo_net._emit_trace(cap, policy, n_layers, True)
        prog, inv, gcfg = cap.finish()
        gc.disable()
        try:
            t0 = time.perf_counter()
            loop_stats = [
                _point_pass_fast(prog, inv, m, gcfg)
                for _ in range(reps) for m in machines
            ]
            t_loop = time.perf_counter() - t0
            t0 = time.perf_counter()
            cols = _compile_fast(prog, gcfg)
            t_compile = time.perf_counter() - t0
            t0 = time.perf_counter()
            vec_stats = [
                _point_pass_vec(cols, inv, m, gcfg)
                for _ in range(reps) for m in machines
            ]
            t_vec = time.perf_counter() - t0
        finally:
            gc.enable()
            gc.collect()
        return loop_stats, vec_stats, len(prog), t_loop, t_compile, t_vec

    loop_stats, vec_stats, n_items, t_loop, t_compile, t_vec = run_once(
        benchmark, run
    )

    def hex_identical(a, b):
        return all(
            getattr(a, f).hex() == getattr(b, f).hex() for f in SimStats.FIELDS
        ) and {k: v.hex() for k, v in a.kernel_cycles.items()} == {
            k: v.hex() for k, v in b.kernel_cycles.items()
        }

    identical = all(hex_identical(a, b) for a, b in zip(loop_stats, vec_stats))
    speedup = t_loop / t_vec if t_vec > 0 else float("inf")

    row = {
        "bench": "vectorized_point_pass",
        "n_layers": n_layers,
        "program_items": n_items,
        "points_priced": reps * len(machines),
        "loop_pass_s": round(t_loop, 4),
        "compile_s": round(t_compile, 4),
        "vec_pass_s": round(t_vec, 4),
        "speedup": round(speedup, 3),
        "bitwise_identical": identical,
    }
    banner(f"Vectorized point pass (yolov3, {n_layers} layers)")
    print(f"python loop pass        : {t_loop:.3f}s")
    print(f"column compile (once)   : {t_compile:.3f}s")
    print(f"numpy column pass       : {t_vec:.3f}s")
    print(f"speedup (pass vs pass)  : {speedup:.2f}x")
    print("BENCH " + json.dumps(row, sort_keys=True))
    benchmark.extra_info.update(row)

    assert identical
    assert speedup >= 2.0


def test_shared_pass_engines(benchmark, yolo_net):
    """Vectorized shared pass vs the per-event Python oracle, same trace.

    Times ``_shared_pass_vec`` (columnar kernel grouping + batched
    event expansion) against ``_shared_pass_python`` (the per-event
    reference loop) over one captured YOLOv3 event stream, reporting
    events/second for both.  The pass outputs must price to bitwise
    identical statistics.  Both engines are L2-walk-bound on conflicted
    traces, so no speedup is gated — the row exists to track the
    trajectory of both engines across PRs (the follow-on that changes
    this picture, a stack-distance batch walk, is sketched in
    ROADMAP.md); the gate is only that the vectorized default stays
    within noise of the oracle.
    """
    from repro.machine.replay import _run_points, _shared_pass_python
    from repro.machine.replay_vec import _shared_pass_vec

    n_layers = int(os.environ.get("REPRO_BENCH_SWEEP_LAYERS", "20") or "20")
    machine = rvv_gem5(vlen_bits=2048, lanes=8, l2_mb=1)
    policy = KernelPolicy(gemm="3loop")

    def run():
        tracecache.clear_registry()
        trace = yolo_net.record_trace(machine, policy, n_layers=n_layers)
        gc.disable()
        try:
            t0 = time.perf_counter()
            vec_out = _shared_pass_vec(trace, machine, defer_vpu=True)
            t_vec = time.perf_counter() - t0
            t0 = time.perf_counter()
            py_out = _shared_pass_python(trace, machine, defer_vpu=True)
            t_py = time.perf_counter() - t0
            vec_stats = _run_points(*vec_out, [machine])[0]
            py_stats = _run_points(*py_out, [machine])[0]
        finally:
            gc.enable()
            gc.collect()
            tracecache.clear_registry()
        return vec_stats, py_stats, trace.n_events, t_vec, t_py

    vec_stats, py_stats, n_events, t_vec, t_py = run_once(benchmark, run)

    identical = all(
        getattr(vec_stats, f).hex() == getattr(py_stats, f).hex()
        for f in SimStats.FIELDS
    ) and {k: v.hex() for k, v in vec_stats.kernel_cycles.items()} == {
        k: v.hex() for k, v in py_stats.kernel_cycles.items()
    }
    eps_vec = n_events / t_vec if t_vec > 0 else float("inf")
    eps_py = n_events / t_py if t_py > 0 else float("inf")

    row = {
        "bench": "shared_pass_engines",
        "n_layers": n_layers,
        "n_events": n_events,
        "python_pass_s": round(t_py, 4),
        "vec_pass_s": round(t_vec, 4),
        "python_events_per_s": round(eps_py),
        "vec_events_per_s": round(eps_vec),
        "bitwise_identical": identical,
    }
    banner(f"Shared-pass engines (yolov3, {n_layers} layers)")
    print(f"python oracle           : {t_py:.3f}s  ({eps_py / 1e3:,.0f}k ev/s)")
    print(f"vectorized (default)    : {t_vec:.3f}s  ({eps_vec / 1e3:,.0f}k ev/s)")
    print("BENCH " + json.dumps(row, sort_keys=True))
    benchmark.extra_info.update(row)

    assert identical
    # Non-regression only: the walk dominates both engines, so the
    # vectorized default must merely not fall behind the oracle by more
    # than timing noise allows.
    assert eps_vec > 0.3 * eps_py


def test_compiled_pass_cache_warm(benchmark, yolo_net, tmp_path):
    """Warm compiled-pass-cache sweep vs its own cold capture run.

    Runs a 3-point VL sweep of YOLOv3 cold (capture + shared pass +
    spill, compiled passes persisted as ``.rpp``/``.rvp``) and then
    warm in the same directory with the in-process registry and
    shared-pass memo cleared — the cross-process re-run shape, where
    every point must price straight from its compiled tier without
    decoding trace columns.  Statistics must be bitwise identical.
    The acceptance figure at the default 20 layers is >=10x (measured
    ~48x, docs/PERFORMANCE.md); the gate sits at 3x so smoke-sized
    layer counts and machine noise don't flake CI.
    """
    from repro.machine import replay

    n_layers = int(os.environ.get("REPRO_BENCH_SWEEP_LAYERS", "20") or "20")
    policy = KernelPolicy(gemm="3loop")
    vlens = [512, 2048, 8192]

    def factory(v):
        return rvv_gem5(vlen_bits=v, lanes=8, l2_mb=1)

    def run():
        env = {
            "REPRO_TRACE_DIR": str(tmp_path),
            "REPRO_TRACE_SPILL": "1",
            "REPRO_PASS_CACHE": "1",
        }
        old = {k: os.environ.get(k) for k in env}
        os.environ.update(env)
        tracecache.clear_registry()
        replay._SHARED_PASS_MEMO.clear()
        gc.disable()
        try:
            t0 = time.perf_counter()
            cold = sweep_vector_lengths(
                yolo_net, vlens, factory, policy,
                n_layers=n_layers, jobs=1, use_cache=False,
            )
            t_cold = time.perf_counter() - t0
            tracecache.clear_registry()
            replay._SHARED_PASS_MEMO.clear()
            tracecache.reset_load_counts()
            t0 = time.perf_counter()
            warm = sweep_vector_lengths(
                yolo_net, vlens, factory, policy,
                n_layers=n_layers, jobs=1, use_cache=False,
            )
            t_warm = time.perf_counter() - t0
            loads = tracecache.load_counts()
        finally:
            gc.enable()
            gc.collect()
            tracecache.clear_registry()
            replay._SHARED_PASS_MEMO.clear()
            for k, v in old.items():
                if v is None:
                    os.environ.pop(k, None)
                else:
                    os.environ[k] = v
        return cold, warm, loads, t_cold, t_warm

    cold, warm, loads, t_cold, t_warm = run_once(benchmark, run)

    def hex_identical(a, b):
        return all(
            getattr(a, f).hex() == getattr(b, f).hex() for f in SimStats.FIELDS
        ) and {k: v.hex() for k, v in a.kernel_cycles.items()} == {
            k: v.hex() for k, v in b.kernel_cycles.items()
        }

    identical = all(hex_identical(a, b) for a, b in zip(cold.stats, warm.stats))
    speedup = t_cold / t_warm if t_warm > 0 else float("inf")
    compiled_hits = (
        loads.get("vecprog", 0)
        + loads.get("pass_spill", 0)
        + loads.get("pass_shm", 0)
    )

    row = {
        "bench": "compiled_pass_cache_warm",
        "n_points": len(vlens),
        "n_layers": n_layers,
        "cold_s": round(t_cold, 4),
        "warm_s": round(t_warm, 4),
        "speedup": round(speedup, 3),
        "compiled_hits": compiled_hits,
        "trace_decodes_warm": loads.get("spill", 0) + loads.get("shm", 0),
        "bitwise_identical": identical,
        "warm_sources": warm.sources,
    }
    banner(f"Compiled-pass cache (yolov3, {n_layers} layers, 3 VL points)")
    print(f"cold (capture+compile)  : {t_cold:.3f}s")
    print(f"warm (tier pricing)     : {t_warm:.3f}s")
    print(f"speedup                 : {speedup:.2f}x")
    print(f"compiled hits / trace decodes : {compiled_hits} / "
          f"{row['trace_decodes_warm']}")
    print("BENCH " + json.dumps(row, sort_keys=True))
    benchmark.extra_info.update(row)

    assert identical
    assert all(s == "replayed" for s in warm.sources)
    # Every warm point must come from a compiled artifact, with no
    # trace-column decode at all.
    assert compiled_hits >= len(vlens)
    assert row["trace_decodes_warm"] == 0
    assert speedup >= 3.0


def test_duplicate_submit_warm(benchmark):
    """Warm duplicate-submit latency: the sealed record answers, <1s.

    Submits one small sweep as a durable job (docs/SERVICE.md), then
    submits the identical grid again.  The second submission must
    attach by content-derived id and answer entirely from the sealed,
    digest-chained results record — zero point simulations, statistics
    bitwise identical — and do so in under a second: the dedup
    guarantee that makes concurrent identical submissions free.
    """
    from repro.service import scheduler

    spec = {
        "net": "yolov3-tiny", "machine": "rvv", "vlen": 512, "lanes": 8,
        "l2_mb": 1, "gemm": "3loop", "winograd": "off", "layers": _LAYERS,
        "axis": "cache", "values": [1, 4],
    }

    def run():
        tmp = tempfile.mkdtemp(prefix="jobs-bench-")
        old_dir = os.environ.get("REPRO_SIMCACHE_DIR")
        os.environ["REPRO_SIMCACHE_DIR"] = tmp
        tracecache.clear_registry()
        gc.disable()
        try:
            t0 = time.perf_counter()
            first = scheduler.submit_and_run(spec)
            t_cold = time.perf_counter() - t0
            t0 = time.perf_counter()
            dup = scheduler.submit_and_run(spec)
            t_warm = time.perf_counter() - t0
        finally:
            gc.enable()
            gc.collect()
            tracecache.clear_registry()
            if old_dir is None:
                os.environ.pop("REPRO_SIMCACHE_DIR", None)
            else:
                os.environ["REPRO_SIMCACHE_DIR"] = old_dir
            shutil.rmtree(tmp, ignore_errors=True)
        return first, dup, t_cold, t_warm

    first, dup, t_cold, t_warm = run_once(benchmark, run)

    def hex_identical(a, b):
        return all(
            getattr(a, f).hex() == getattr(b, f).hex()
            for f in SimStats.FIELDS
        ) and {k: v.hex() for k, v in a.kernel_cycles.items()} == {
            k: v.hex() for k, v in b.kernel_cycles.items()
        }

    identical = all(
        hex_identical(a, b) for a, b in zip(first.result.stats, dup.result.stats)
    )
    row = {
        "bench": "duplicate_submit_warm",
        "n_points": len(spec["values"]),
        "n_layers": _LAYERS,
        "cold_submit_s": round(t_cold, 4),
        "warm_submit_s": round(t_warm, 4),
        "warm_sources": dup.result.sources,
        "bitwise_identical": identical,
    }
    banner(f"Duplicate-submit dedup (yolov3-tiny, {_LAYERS} layers)")
    print(f"first submission        : {t_cold:.3f}s")
    print(f"duplicate submission    : {t_warm:.4f}s")
    print("BENCH " + json.dumps(row, sort_keys=True))
    benchmark.extra_info.update(row)

    assert first.state == "done" and first.sealed
    # The dedup contract: attached by content id, answered from the
    # sealed record, zero extra point simulations, bitwise identical.
    assert dup.attached and dup.sealed
    assert dup.result.sources == ["sealed"] * len(spec["values"])
    assert identical
    # The latency gate: a warm duplicate must answer in under a second.
    assert t_warm < 1.0


def test_pruned_autotune_selfperf(benchmark):
    """Model-guided block-size search vs the exhaustive grid.

    Runs the 48-point Table-II-style blocking grid for one YOLOv3 GEMM
    shape twice through ``autotune_blocks``: exhaustively (every point
    simulated) and model-guided (``prune=9``: the static cost model
    ranks all 48, only the top 9 simulate).  The headline numbers are
    the wall-clock speedup and the quality of the shortcut — the
    pruned search's winner must stay within a few percent of the
    exhaustive winner (the top-1-containment acceptance bar itself is
    asserted per-preset in tests/test_predict.py).
    """
    from repro.core import autotune_blocks
    from repro.kernels.gemm_6loop import BlockSizes

    M, N, K = 64, 5776, 288  # yolov3-tiny 76x76 im2col shape family
    grid = [
        BlockSizes(m, n, k)
        for m in (16, 32, 48, 64)
        for n in (256, 512, 1024)
        for k in (64, 128, 256, 512)
    ]
    prune = 9
    machine = rvv_gem5(vlen_bits=512, lanes=8, l2_mb=1)

    def run():
        gc.disable()
        try:
            t0 = time.perf_counter()
            best_full, full = autotune_blocks(machine, M, N, K,
                                              candidates=grid)
            t_full = time.perf_counter() - t0
            t0 = time.perf_counter()
            best_pruned, pruned = autotune_blocks(machine, M, N, K,
                                                  candidates=grid,
                                                  prune=prune)
            t_pruned = time.perf_counter() - t0
        finally:
            gc.enable()
            gc.collect()
        return best_full, full, best_pruned, pruned, t_full, t_pruned

    best_full, full, best_pruned, pruned, t_full, t_pruned = run_once(
        benchmark, run
    )

    n_sim = sum(r.source == "simulated" for r in pruned)
    speedup = t_full / t_pruned if t_pruned > 0 else float("inf")
    cycles = {r.blocks: r.cycles for r in full}
    quality = cycles[best_pruned] / cycles[best_full]

    row = {
        "bench": "pruned_autotune",
        "n_points": len(grid),
        "simulated": n_sim,
        "exhaustive_s": round(t_full, 4),
        "pruned_s": round(t_pruned, 4),
        "speedup": round(speedup, 3),
        "best_exhaustive": str(best_full),
        "best_pruned": str(best_pruned),
        "quality": round(quality, 4),
    }
    banner(f"Model-guided autotune ({len(grid)}-point grid, prune={prune})")
    print(f"exhaustive ({len(grid)} sims)    : {t_full:.3f}s")
    print(f"pruned ({n_sim} sims + model) : {t_pruned:.3f}s")
    print(f"speedup                 : {speedup:.2f}x")
    print(f"winner quality          : {quality:.4f}x of exhaustive best")
    print("BENCH " + json.dumps(row, sort_keys=True))
    benchmark.extra_info.update(row)

    # The model may only simulate the requested survivor budget...
    assert n_sim == prune
    assert all(
        r.source in ("simulated", "pruned-by-model") for r in pruned
    )
    # ...must actually be the cheap path...
    assert speedup >= 2.0
    # ...and must not cost more than a few percent of winner quality.
    assert quality <= 1.05


def test_analysis_selfperf(benchmark, yolo_net):
    """Static-analyzer runtime on an already-captured trace.

    ``repro analyze`` is a CI gate, so its cost on a cached trace is a
    number worth tracking: the full verifier + working-set + roofline
    pass over a 20-layer YOLOv3 trace (~1.4M events) must stay cheap
    relative to the capture it rides on.  ``REPRO_BENCH_SWEEP_LAYERS``
    shrinks the layer count for smoke runs, same as the sweep bench.
    """
    from repro.analysis import analyze_trace, reuse_distances
    from repro.core.tracecache import get_or_capture

    n_layers = int(os.environ.get("REPRO_BENCH_SWEEP_LAYERS", "20") or "20")
    machine = rvv_gem5(vlen_bits=2048, lanes=8, l2_mb=1)
    policy = KernelPolicy(gemm="3loop")

    def run():
        tracecache.clear_registry()
        t0 = time.perf_counter()
        trace, _ = get_or_capture(yolo_net, machine, policy, n_layers)
        t_capture = time.perf_counter() - t0
        gc.disable()
        try:
            t0 = time.perf_counter()
            report = analyze_trace(
                trace, machine, policy=policy, net_name=yolo_net.name
            )
            t_analyze = time.perf_counter() - t0
            # The temporal reuse-distance pass alone (columns are
            # already materialized by the full pipeline above).
            t0 = time.perf_counter()
            rr = reuse_distances(trace, machine)
            t_reuse = time.perf_counter() - t0
        finally:
            gc.enable()
            gc.collect()
            tracecache.clear_registry()
        return report, rr, trace.n_events, t_capture, t_analyze, t_reuse

    report, rr, n_events, t_capture, t_analyze, t_reuse = run_once(
        benchmark, run
    )

    row = {
        "bench": "analysis_selfperf",
        "n_layers": n_layers,
        "n_events": n_events,
        "capture_s": round(t_capture, 4),
        "analyze_s": round(t_analyze, 4),
        "reuse_s": round(t_reuse, 4),
        "reuse_touches": rr.n_touches,
        "findings": len(report.findings),
    }
    banner(f"Static analysis (yolov3, {n_layers} layers, cached trace)")
    print(f"capture                 : {t_capture:.3f}s")
    print(f"analyze ({n_events / 1e6:.2f}M events)  : {t_analyze:.3f}s")
    print(f"reuse   ({rr.n_touches / 1e6:.2f}M touches) : {t_reuse:.3f}s")
    print("BENCH " + json.dumps(row, sort_keys=True))
    benchmark.extra_info.update(row)

    # The analyzer must come back clean on the shipped network...
    assert report.ok, [f.as_row() for f in report.findings]
    assert report.working_set and report.bounds and report.reuse
    # ...and stay interactive: a few seconds for the full 20-layer
    # trace (the acceptance figure in docs/PERFORMANCE.md is <1s).
    assert t_analyze < 5.0
    # The reuse-distance pass alone must also stay interactive.
    assert t_reuse < 5.0


def test_codecheck_selfperf(benchmark):
    """Code-invariant analyzer runtime over the repro package itself.

    ``repro check-code`` runs in the CI lint job on every push, so its
    end-to-end cost (parse ~80 modules, build the call graph, classify
    zones, run 13 rule families) is a gate, not just a datapoint: it
    must stay well under interactive latency or people stop running it
    locally before committing.
    """
    from repro.analysis.codecheck import check_package, default_config

    def run():
        config = default_config()
        t0 = time.perf_counter()
        first = check_package(config)
        t_cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        second = check_package(config)
        t_warm = time.perf_counter() - t0
        return first, second, t_cold, t_warm

    first, second, t_cold, t_warm = run_once(benchmark, run)

    row = {
        "bench": "codecheck_selfperf",
        "cold_s": round(t_cold, 4),
        "warm_s": round(t_warm, 4),
        "findings": len(first),
    }
    banner("Code-invariant analyzer (repro check-code, full package)")
    print(f"cold run                : {t_cold:.3f}s")
    print(f"repeat run              : {t_warm:.3f}s")
    print("BENCH " + json.dumps(row, sort_keys=True))
    benchmark.extra_info.update(row)

    # The gate the repo ships under: zero findings on its own tree...
    assert not first, [f.as_row() for f in first]
    # ...reported deterministically...
    assert [f.as_dict() for f in first] == [f.as_dict() for f in second]
    # ...and fast enough to run on every commit.
    assert t_cold < 5.0
