"""Simulator self-performance: wall-clock of the simulation pipeline.

Unlike the other bench modules (which reproduce the *paper's* numbers),
this one tracks the *repository's own* performance trajectory: how fast
one design point simulates, how a small sweep scales with parallel
workers, and how much the persistent simcache saves on re-runs.  It
emits one machine-parseable ``BENCH {json}`` row per run so successive
PRs can be compared (grep the pytest output for ``^BENCH ``).

Kept intentionally small (yolov3-tiny, few layers) so it adds seconds,
not minutes, to the suite; the headline acceptance numbers for large
sweeps are recorded in docs/PERFORMANCE.md.
"""

import json
import os
import shutil
import tempfile
import time

from conftest import banner, run_once

from repro.core import sweep_vector_lengths
from repro.core.simcache import cache_dir
from repro.machine import rvv_gem5
from repro.machine.simulator import SimStats
from repro.nets import KernelPolicy

_VLENS = [512, 1024, 2048, 4096]
_POLICY = KernelPolicy(gemm="3loop")
_LAYERS = 6


def _machine_for(vlen: int):
    return rvv_gem5(vlen_bits=vlen, lanes=8, l2_mb=1)


def test_simulator_selfperf(benchmark, tiny_net):
    def run():
        # Single design point, serial.
        t0 = time.perf_counter()
        point_stats = tiny_net.simulate(
            _machine_for(2048), _POLICY, n_layers=_LAYERS
        )
        t_point = time.perf_counter() - t0

        # Small sweep, serial vs parallel (jobs from REPRO_JOBS, else 2).
        t0 = time.perf_counter()
        serial = sweep_vector_lengths(
            tiny_net, _VLENS, _machine_for, _POLICY, n_layers=_LAYERS, jobs=1
        )
        t_serial = time.perf_counter() - t0

        jobs = int(os.environ.get("REPRO_JOBS", "0") or "0") or 2
        t0 = time.perf_counter()
        parallel = sweep_vector_lengths(
            tiny_net, _VLENS, _machine_for, _POLICY, n_layers=_LAYERS, jobs=jobs
        )
        t_parallel = time.perf_counter() - t0

        # Cold vs warm simcache, in a throwaway directory.
        tmp = tempfile.mkdtemp(prefix="simcache-bench-")
        old_dir = os.environ.get("REPRO_SIMCACHE_DIR")
        os.environ["REPRO_SIMCACHE_DIR"] = tmp
        try:
            t0 = time.perf_counter()
            sweep_vector_lengths(
                tiny_net, _VLENS, _machine_for, _POLICY,
                n_layers=_LAYERS, jobs=1, use_cache=True,
            )
            t_cold = time.perf_counter() - t0
            t0 = time.perf_counter()
            warm = sweep_vector_lengths(
                tiny_net, _VLENS, _machine_for, _POLICY,
                n_layers=_LAYERS, jobs=1, use_cache=True,
            )
            t_warm = time.perf_counter() - t0
        finally:
            if old_dir is None:
                os.environ.pop("REPRO_SIMCACHE_DIR", None)
            else:
                os.environ["REPRO_SIMCACHE_DIR"] = old_dir
            shutil.rmtree(tmp, ignore_errors=True)

        return (
            point_stats, serial, parallel, warm, jobs,
            t_point, t_serial, t_parallel, t_cold, t_warm,
        )

    (
        point_stats, serial, parallel, warm, jobs,
        t_point, t_serial, t_parallel, t_cold, t_warm,
    ) = run_once(benchmark, run)

    def identical(a, b):
        return all(
            getattr(a, f) == getattr(b, f) for f in SimStats.FIELDS
        ) and a.kernel_cycles == b.kernel_cycles

    par_ok = all(identical(a, b) for a, b in zip(serial.stats, parallel.stats))
    warm_ok = all(identical(a, b) for a, b in zip(serial.stats, warm.stats))

    row = {
        "bench": "simulator_selfperf",
        "point_s": round(t_point, 4),
        "sweep_serial_s": round(t_serial, 4),
        "sweep_parallel_s": round(t_parallel, 4),
        "jobs": jobs,
        "simcache_cold_s": round(t_cold, 4),
        "simcache_warm_s": round(t_warm, 4),
        "parallel_identical": par_ok,
        "warm_identical": warm_ok,
    }
    banner("Simulator self-performance (yolov3-tiny, 6 layers)")
    print(f"single point            : {t_point:.3f}s")
    print(f"4-point sweep, serial   : {t_serial:.3f}s")
    print(f"4-point sweep, jobs={jobs}   : {t_parallel:.3f}s")
    print(f"simcache cold / warm    : {t_cold:.3f}s / {t_warm:.4f}s")
    print("BENCH " + json.dumps(row, sort_keys=True))
    benchmark.extra_info.update(row)

    # Correctness gates: parallel and cached results must be identical.
    assert par_ok and warm_ok
    # A warm cache re-run must be nearly free.
    assert t_warm < 0.5 * t_cold
    # Sanity: the point simulated real work.
    assert point_stats.cycles > 0
