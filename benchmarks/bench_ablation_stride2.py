"""Ablation/extension — fixing Winograd's stride-2 problem.

Section VII-A: Winograd-by-subsampling is 1.4x slower than
im2col+GEMM on stride-2 layers, and "different algorithmic
optimizations are required".  This bench evaluates the parity
decomposition (four stride-1 sub-convolutions, see
``repro.kernels.winograd.stride2``) against both on YOLOv3's stride-2
downsampling layers on A64FX.
"""

from conftest import banner, run_once

from repro.core import format_table
from repro.kernels import ConvSpec, trace_gemm_6loop, trace_im2col
from repro.kernels.winograd import trace_stride2_decomposed, trace_winograd_conv
from repro.machine import TraceSimulator, a64fx

#: YOLOv3's five stride-2 downsampling layers (608x608 input).
STRIDE2_LAYERS = [
    ConvSpec(32, 608, 608, 64, 3, 2, 1),
    ConvSpec(64, 304, 304, 128, 3, 2, 1),
    ConvSpec(128, 152, 152, 256, 3, 2, 1),
    ConvSpec(256, 76, 76, 512, 3, 2, 1),
    ConvSpec(512, 38, 38, 1024, 3, 2, 1),
]


def _gemm(spec):
    sim = TraceSimulator(a64fx())
    a = sim.alloc("A", spec.M * spec.K * 4)
    b = sim.alloc("B", spec.K * spec.N * 4)
    c = sim.alloc("C", spec.M * spec.N * 4)
    src = sim.alloc("x", spec.in_channels * spec.in_h * spec.in_w * 4)
    trace_im2col(sim, spec, src.base, b.base)
    trace_gemm_6loop(sim, spec.M, spec.N, spec.K, a.base, b.base, c.base)
    return sim.stats.cycles


def _trace(tracer, spec):
    sim = TraceSimulator(a64fx())
    tracer(sim, spec)
    return sim.stats.cycles


def test_stride2_decomposition(benchmark):
    def run():
        rows = []
        for spec in STRIDE2_LAYERS:
            g = _gemm(spec)
            fall = _trace(trace_winograd_conv, spec)
            dec = _trace(trace_stride2_decomposed, spec)
            rows.append(
                {
                    "layer": f"{spec.in_channels}->{spec.out_channels} @{spec.in_h}",
                    "fallback/gemm": g / fall,
                    "decomposed/gemm": g / dec,
                    "dec vs fallback": fall / dec,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    banner("Extension: stride-2 Winograd — subsampling fallback vs parity "
           "decomposition (A64FX)")
    print(format_table(rows))
    print("\npaper: fallback is 1.4x slower than GEMM (ratio ~0.71); the "
          "decomposition recovers most of that gap.")

    from repro.core import geomean

    # Fallback loses to GEMM in aggregate (the paper reports the
    # network-level 1.4x-slower figure; the very first, im2col-dominated
    # layer can buck the trend).
    assert geomean(r["fallback/gemm"] for r in rows) < 1.0
    for row in rows:
        # The decomposition is consistently better than the fallback...
        assert row["dec vs fallback"] > 1.1
        # ...and roughly competitive with GEMM.
        assert row["decomposed/gemm"] > 0.6
