"""Section VI-B(c) — impact of the number of vector lanes on RVV.

YOLOv3 (first 20 layers), 1 MB L2, lanes swept 2 -> 8 for a short and a
long vector length.  Paper: ~1.25x for the 8192-bit vector length; the
512-bit configuration scales from 2 to 4 lanes but saturates beyond 4 —
"additional vector lanes are more beneficial to longer vector lengths".
"""

from conftest import banner, run_once

from repro.core import format_table, sweep_lanes
from repro.machine import rvv_gem5
from repro.nets import KernelPolicy

LANES = [2, 4, 8]
N_LAYERS = 20


def test_lanes_sweep(benchmark, yolo_net):
    def run():
        return {
            vlen: sweep_lanes(
                yolo_net,
                LANES,
                lambda l, v=vlen: rvv_gem5(vlen_bits=v, lanes=l, l2_mb=1),
                KernelPolicy(gemm="3loop"),
                n_layers=N_LAYERS,
            )
            for vlen in (512, 8192)
        }

    sweeps = run_once(benchmark, run)
    banner("Section VI-B(c): vector-lane sweep on RVV @ gem5 (YOLOv3, 20 layers)")
    rows = [
        {
            "vlen": f"{vlen}-bit",
            **{f"{l} lanes": s for l, s in zip(LANES, res.speedups())},
        }
        for vlen, res in sweeps.items()
    ]
    print(format_table(rows))
    print("\npaper: ~1.25x for 8192-bit from 2->8 lanes; 512-bit saturates at 4 lanes")

    s512 = sweeps[512].speedups()
    s8192 = sweeps[8192].speedups()
    # Shape: the long vector keeps scaling with lanes...
    assert s8192[-1] > 1.2
    assert s8192[2] > s8192[1] > s8192[0]
    # ...while the short vector saturates beyond 4 lanes.
    gain_512_4_to_8 = s512[2] / s512[1]
    gain_8192_4_to_8 = s8192[2] / s8192[1]
    assert gain_512_4_to_8 < 1.1
    assert gain_8192_4_to_8 > gain_512_4_to_8
    # More lanes help longer vectors more, overall.
    assert s8192[-1] > s512[-1]
