"""Setuptools shim so `pip install -e .` works without network access.

The canonical metadata lives in pyproject.toml; this file only enables
legacy (no-PEP-517) editable installs on environments lacking the
`wheel` package.
"""
from setuptools import setup

setup()
